/**
 * @file
 * Unit tests for the dnalint rule engine (tools/dnalint), driven by
 * fixture sources so every rule's positive and negative cases are
 * pinned down without touching the real tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dnalint/dnalint.hh"

namespace
{

using dnalint::AllRules;
using dnalint::checkFile;
using dnalint::checkProject;
using dnalint::Finding;
using dnalint::ProjectFacts;
using dnalint::lex;
using dnalint::LintContext;
using dnalint::Token;
using dnalint::TokenKind;

std::vector<std::string>
tokenTexts(const std::string &src)
{
    std::vector<std::string> texts;
    for (const Token &tok : lex(src))
        texts.push_back(tok.text);
    return texts;
}

bool
hasRule(const std::vector<Finding> &findings, dnalint::Rule rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [rule](const Finding &f) { return f.rule == rule; });
}

LintContext
emptyContext()
{
    LintContext ctx;
    ctx.selfcontain_harness_wired = true;
    return ctx;
}

// ---------------------------------------------------------------- lexer

TEST(DnalintLexer, StripsCommentsAndStrings)
{
    const std::string src = R"cpp(
        int a; // comment with throw and mt19937
        /* block comment
           throw std::mt19937 */
        const char *s = "throw mt19937";
        char c = 't';
        int b;
    )cpp";
    const auto texts = tokenTexts(src);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "throw"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "mt19937"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "int"), 2);
}

TEST(DnalintLexer, StripsRawStrings)
{
    const std::string src =
        "auto s = R\"(throw inside raw string)\"; int after;";
    const auto texts = tokenTexts(src);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "throw"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "after"), 1);
}

TEST(DnalintLexer, FoldsPreprocessorDirectives)
{
    const std::string src = "#include \"dna/strand.hh\"\nint x;\n";
    const auto tokens = lex(src);
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, TokenKind::Directive);
    EXPECT_EQ(tokens[0].text, "#include \"dna/strand.hh\"");
    EXPECT_EQ(tokens[0].line, 1u);
}

TEST(DnalintLexer, TracksLineNumbers)
{
    const auto tokens = lex("int a;\n\nint b;\n");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[3].line, 3u);
}

TEST(DnalintLexer, BracketDigraphsLexAsBrackets)
{
    // <% %> <: :> are phase-3 spellings of { } [ ].
    const auto texts = tokenTexts("int a<:3:> <% %>");
    const std::vector<std::string> expected = {"int", "a", "[", "3",
                                               "]",   "{", "}"};
    EXPECT_EQ(texts, expected);
}

TEST(DnalintLexer, DigraphCarveOutForTemplateScope)
{
    // C++11 carve-out: `<::` not followed by ':' or '>' is `<` `::`,
    // NOT the digraph `[` + `:`.  `Foo<::Bar>` must stay a template.
    const auto texts = tokenTexts("Foo<::Bar> x;");
    const std::vector<std::string> expected = {"Foo", "<", "::", "Bar",
                                               ">",   "x", ";"};
    EXPECT_EQ(texts, expected);
    // But `<::>` and `<:::` keep the digraph reading.
    EXPECT_EQ(tokenTexts("a<::>b")[1], "[");
}

TEST(DnalintLexer, LineSplicesJoinTokensAndComments)
{
    // A backslash-newline splices mid-identifier...
    const auto texts = tokenTexts("int thro\\\nwaway;");
    const std::vector<std::string> expected = {"int", "throwaway", ";"};
    EXPECT_EQ(texts, expected);
    // ...continues a // comment onto the next line...
    const auto commented = tokenTexts("// comment \\\n throw\nint a;");
    const std::vector<std::string> after = {"int", "a", ";"};
    EXPECT_EQ(commented, after);
    // ...and splices between tokens (CRLF form too).
    EXPECT_EQ(tokenTexts("int \\\r\n b;"),
              (std::vector<std::string>{"int", "b", ";"}));
}

TEST(DnalintLexer, SplicedNumberStaysOneToken)
{
    const auto texts = tokenTexts("int a = 12\\\n34;");
    ASSERT_EQ(texts.size(), 5u);
    EXPECT_EQ(texts[3], "1234");
}

// ------------------------------------------------------- R1 nodiscard

TEST(DnalintR1, FlagsUnannotatedFallibleApi)
{
    const std::string src = R"cpp(
        #pragma once
        namespace x {
        std::optional<int> tryParse(const std::string &s);
        }
    )cpp";
    const auto findings =
        checkFile("src/x/y.hh", src, emptyContext(), AllRules);
    ASSERT_TRUE(hasRule(findings, dnalint::R1_Nodiscard));
    EXPECT_NE(findings[0].message.find("tryParse"), std::string::npos);
}

TEST(DnalintR1, AcceptsAnnotatedApi)
{
    const std::string src = R"cpp(
        #pragma once
        [[nodiscard]] std::optional<int> tryParse(const std::string &s);
        [[nodiscard]] std::vector<std::uint8_t> decodeRow(int r);
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R1_Nodiscard));
}

TEST(DnalintR1, NestedTemplateReturnTypeIsADeclaration)
{
    const std::string src = R"cpp(
        #pragma once
        std::optional<std::vector<std::uint8_t>> tryToBytes(const S &s);
    )cpp";
    EXPECT_TRUE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                        dnalint::R1_Nodiscard));
}

TEST(DnalintR1, IgnoresVoidReturnsAndCallSites)
{
    const std::string src = R"cpp(
        #pragma once
        void encodeInto(std::vector<int> &out);
        inline int consume(const S &s)
        {
            return helper::tryParse(s).value_or(0);
        }
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R1_Nodiscard));
}

TEST(DnalintR1, IgnoresNonMatchingNamesAndNonSrcHeaders)
{
    const std::string plain = R"cpp(
        #pragma once
        int size() const;
        double total() const;
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", plain, emptyContext()),
                         dnalint::R1_Nodiscard));

    const std::string fallible = R"cpp(
        #pragma once
        std::optional<int> tryParse(const std::string &s);
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.hh", fallible, emptyContext()),
                         dnalint::R1_Nodiscard));
}

// --------------------------------------------------- R2 throw boundary

TEST(DnalintR2, FlagsThrowOutsideWhitelist)
{
    const std::string src = R"cpp(
        void f() { throw std::runtime_error("boom"); }
    )cpp";
    const auto findings = checkFile("src/x/y.cc", src, emptyContext());
    ASSERT_TRUE(hasRule(findings, dnalint::R2_ThrowBoundary));
    EXPECT_EQ(findings[0].line, 2u);
}

TEST(DnalintR2, AcceptsWhitelistedFileAndNonSrcTrees)
{
    const std::string src = "void f() { throw 1; }\n";
    LintContext ctx = emptyContext();
    ctx.throw_allowlist.insert("src/x/y.cc");
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, ctx),
                         dnalint::R2_ThrowBoundary));
    // R2 scopes to src/: test code may throw freely.
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.cc", src, emptyContext()),
                         dnalint::R2_ThrowBoundary));
}

TEST(DnalintR2, ThrowInCommentDoesNotCount)
{
    const std::string src = "// throws std::invalid_argument\nint x;\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, emptyContext()),
                         dnalint::R2_ThrowBoundary));
}

TEST(DnalintR2, StaleWhitelistEntriesAreFlagged)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/a.cc", "src/b.cc"};
    ctx.throw_allowlist = {"src/a.cc", "src/b.cc", "src/gone.cc"};
    // Only a.cc still throws.
    ProjectFacts facts;
    facts.throw_files = {"src/a.cc"};
    const auto findings = checkProject(ctx, facts);
    // b.cc is stale (no throw), gone.cc is stale (missing).
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R2_ThrowBoundary;
                            }),
              2);
}

TEST(DnalintR2, DuplicateWhitelistEntriesAreFlagged)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/a.cc"};
    // The ordered entry list preserves what the file actually said;
    // the set view dedupes, so the duplicate is only visible here.
    ctx.throw_allowlist_entries = {"src/a.cc", "src/a.cc", "src/a.cc"};
    ctx.throw_allowlist = {"src/a.cc"};
    ProjectFacts facts;
    facts.throw_files = {"src/a.cc"};
    const auto findings = checkProject(ctx, facts);
    const auto dupes = std::count_if(
        findings.begin(), findings.end(), [](const Finding &f) {
            return f.rule == dnalint::R2_ThrowBoundary &&
                   f.message.find("duplicate") != std::string::npos;
        });
    EXPECT_EQ(dupes, 2); // Two extra copies, one finding each.
}

TEST(DnalintR2, OverlappingWhitelistEntriesAreFlagged)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/ecc/gf256.cc"};
    ctx.throw_allowlist_entries = {"src/ecc", "src/ecc/gf256.cc"};
    ctx.throw_allowlist = {"src/ecc", "src/ecc/gf256.cc"};
    ProjectFacts facts;
    facts.throw_files = {"src/ecc/gf256.cc"};
    const auto findings = checkProject(ctx, facts);
    EXPECT_TRUE(std::any_of(
        findings.begin(), findings.end(), [](const Finding &f) {
            return f.rule == dnalint::R2_ThrowBoundary &&
                   f.message.find("overlapping") != std::string::npos;
        }));
    // A shared directory is not an overlap: sibling files coexist.
    LintContext siblings = emptyContext();
    siblings.project_files = {"src/ecc/a.cc", "src/ecc/ab.cc"};
    siblings.throw_allowlist_entries = {"src/ecc/a.cc", "src/ecc/ab.cc"};
    siblings.throw_allowlist = {"src/ecc/a.cc", "src/ecc/ab.cc"};
    ProjectFacts sibling_facts;
    sibling_facts.throw_files = {"src/ecc/a.cc", "src/ecc/ab.cc"};
    EXPECT_FALSE(hasRule(checkProject(siblings, sibling_facts),
                         dnalint::R2_ThrowBoundary));
}

// ------------------------------------------------ R3 self-containment

TEST(DnalintR3, UnwiredHarnessIsFlagged)
{
    LintContext ctx;
    ctx.selfcontain_harness_wired = false;
    EXPECT_TRUE(hasRule(checkProject(ctx, {}), dnalint::R3_SelfContainment));
    ctx.selfcontain_harness_wired = true;
    EXPECT_FALSE(
        hasRule(checkProject(ctx, {}), dnalint::R3_SelfContainment));
}

// ------------------------------------------------- R4 include hygiene

TEST(DnalintR4, FlagsRelativeProjectInclude)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/ecc/gf256.hh", "src/ecc/gf256.cc"};
    const std::string src = "#include \"gf256.hh\"\n";
    const auto findings = checkFile("src/ecc/gf256.cc", src, ctx);
    ASSERT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    EXPECT_NE(findings[0].message.find("ecc/gf256.hh"), std::string::npos);
}

TEST(DnalintR4, AcceptsFullPathAndTopTreeIncludes)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/ecc/gf256.hh", "tools/dnalint/dnalint.hh"};
    EXPECT_FALSE(hasRule(
        checkFile("src/ecc/gf256.cc", "#include \"ecc/gf256.hh\"\n", ctx),
        dnalint::R4_IncludeHygiene));
    // Non-src trees may also include from their own top directory.
    EXPECT_FALSE(hasRule(checkFile("tools/dnalint/main.cc",
                                   "#include \"dnalint/dnalint.hh\"\n", ctx),
                         dnalint::R4_IncludeHygiene));
    // tools/ is a global -I root like src/: resolvable from any tree.
    EXPECT_FALSE(hasRule(checkFile("tests/tools/test_dnalint.cc",
                                   "#include \"dnalint/dnalint.hh\"\n", ctx),
                         dnalint::R4_IncludeHygiene));
}

TEST(DnalintR4, FlagsUnresolvableQuotedInclude)
{
    const auto findings = checkFile(
        "src/x/y.cc", "#include \"no/such/file.hh\"\n", emptyContext());
    EXPECT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    // Angle includes are system headers: out of scope.
    EXPECT_FALSE(hasRule(
        checkFile("src/x/y.cc", "#include <vector>\n", emptyContext()),
        dnalint::R4_IncludeHygiene));
}

TEST(DnalintR4, HeadersMustOpenWithPragmaOnce)
{
    const std::string guarded = R"cpp(
        #ifndef X_HH
        #define X_HH
        int x;
        #endif // X_HH
    )cpp";
    const auto findings = checkFile("src/x/y.hh", guarded, emptyContext());
    ASSERT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    EXPECT_NE(findings[0].message.find("#pragma once"), std::string::npos);

    const std::string pragma = "#pragma once\nint x;\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", pragma, emptyContext()),
                         dnalint::R4_IncludeHygiene));
    // Sources have no guard requirement.
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", "int x;\n", emptyContext()),
                         dnalint::R4_IncludeHygiene));
}

// ----------------------------------------------------- R5 seed audit

TEST(DnalintR5, FlagsAdHocRandomness)
{
    const std::string src = R"cpp(
        #include <random>
        std::mt19937 gen(std::random_device{}());
        long t = time(NULL);
    )cpp";
    const auto findings = checkFile("tests/x/y.cc", src, emptyContext());
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R5_SeedAudit;
                            }),
              3);
}

TEST(DnalintR5, RandomModuleAndLiteralsAreExempt)
{
    const std::string src = "std::mt19937 engine;\n";
    EXPECT_FALSE(hasRule(checkFile("src/util/random.hh", src, emptyContext()),
                         dnalint::R5_SeedAudit));
    // Identifier inside a string literal: stripped by the lexer.
    const std::string quoted = "const char *s = \"mt19937 rand\";\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", quoted, emptyContext()),
                         dnalint::R5_SeedAudit));
    // `random` (the project wrapper) is not a banned identifier.
    const std::string wrapper = "Strand random(Rng &rng, std::size_t n);\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", wrapper, emptyContext()),
                         dnalint::R5_SeedAudit));
}

// ------------------------------------------------- R6 lock discipline

TEST(DnalintR6, FlagsMutexWithoutGuardedByPeer)
{
    const std::string src = R"cpp(
        class Registry {
          private:
            mutable Mutex mutex_;
            int value_ = 0;
        };
    )cpp";
    const auto findings = checkFile("src/x/y.hh", src, emptyContext(),
                                    dnalint::R6_LockDiscipline);
    ASSERT_TRUE(hasRule(findings, dnalint::R6_LockDiscipline));
    EXPECT_NE(findings[0].message.find("mutex_"), std::string::npos);
}

TEST(DnalintR6, AcceptsMutexWithGuardedByPeer)
{
    const std::string src = R"cpp(
        class Registry {
          private:
            mutable Mutex mutex_;
            int value_ DNASTORE_GUARDED_BY(mutex_) = 0;
        };
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R6_LockDiscipline));
}

TEST(DnalintR6, WrappedMutexDeclarationsAreAudited)
{
    // unique_ptr<Mutex> (the movable-class idiom) is still a mutex
    // declaration; a *dereferencing* GUARDED_BY peer satisfies it.
    const std::string src = R"cpp(
        class Archive {
          private:
            mutable std::unique_ptr<Mutex> library_mutex_;
            mutable std::optional<Library> library_
                DNASTORE_GUARDED_BY(*library_mutex_);
        };
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R6_LockDiscipline));
}

TEST(DnalintR6, AllowlistedMutexIsClean)
{
    const std::string src = "Mutex output_mutex;\n";
    LintContext ctx = emptyContext();
    ctx.lock_allowlist.insert("src/x/y.cc:output_mutex");
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, ctx),
                         dnalint::R6_LockDiscipline));
    // And the audit still records it for staleness tracking.
    ProjectFacts facts;
    checkFile("src/x/y.cc", src, ctx, AllRules, &facts);
    EXPECT_EQ(facts.unguarded_mutexes.count("src/x/y.cc:output_mutex"), 1u);
}

TEST(DnalintR6, FlagsNakedLockCalls)
{
    const std::string src = R"cpp(
        void f(Mutex &m) {
            m.lock();
            m.unlock();
        }
    )cpp";
    const auto findings = checkFile("src/x/y.cc", src, emptyContext());
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R6_LockDiscipline;
                            }),
              2);
}

TEST(DnalintR6, SyncVocabularyAndNonSrcAreExempt)
{
    // sync.hh is the sanctioned home of the raw std::mutex and of the
    // naked lock()/unlock() forwarding calls.
    const std::string src = R"cpp(
        class Mutex {
          public:
            void lock() { raw_.lock(); }
          private:
            std::mutex raw_;
        };
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/util/sync.hh", src, emptyContext()),
                         dnalint::R6_LockDiscipline));
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.cc", src, emptyContext()),
                         dnalint::R6_LockDiscipline));
}

TEST(DnalintR6, StaleLockAllowlistEntryIsFlagged)
{
    LintContext ctx = emptyContext();
    ctx.lock_allowlist.insert("src/gone.cc:m");
    ProjectFacts facts; // No unguarded mutex anywhere.
    EXPECT_TRUE(
        hasRule(checkProject(ctx, facts), dnalint::R6_LockDiscipline));
    facts.unguarded_mutexes.insert("src/gone.cc:m");
    EXPECT_FALSE(
        hasRule(checkProject(ctx, facts), dnalint::R6_LockDiscipline));
}

// ---------------------------------------------- R7 atomic memory order

TEST(DnalintR7, FlagsImplicitSeqCst)
{
    const std::string src = R"cpp(
        void f(std::atomic<int> &a) {
            a.store(1);
            int v = a.load();
            a.fetch_add(2);
        }
    )cpp";
    const auto findings = checkFile("src/x/y.cc", src, emptyContext());
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R7_AtomicOrder;
                            }),
              3);
}

TEST(DnalintR7, AcceptsExplicitOrder)
{
    const std::string src = R"cpp(
        void f(std::atomic<int> &a) {
            a.store(1, std::memory_order_release);
            int v = a.load(std::memory_order_acquire);
            int w = a.load(std::memory_order::seq_cst);
        }
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, emptyContext()),
                         dnalint::R7_AtomicOrder));
}

TEST(DnalintR7, RelaxedNeedsAllowlist)
{
    const std::string src = R"cpp(
        void f(std::atomic<int> &a) {
            a.fetch_add(1, std::memory_order_relaxed);
        }
    )cpp";
    EXPECT_TRUE(hasRule(checkFile("src/x/y.cc", src, emptyContext()),
                        dnalint::R7_AtomicOrder));
    LintContext ctx = emptyContext();
    ctx.relaxed_allowlist.insert("src/x/y.cc");
    EXPECT_FALSE(
        hasRule(checkFile("src/x/y.cc", src, ctx), dnalint::R7_AtomicOrder));
    // C++20 scoped-enum spelling counts as relaxed too.
    const std::string scoped = R"cpp(
        void f(std::atomic<int> &a) {
            a.fetch_add(1, std::memory_order::relaxed);
        }
    )cpp";
    EXPECT_TRUE(hasRule(checkFile("src/x/y.cc", scoped, emptyContext()),
                        dnalint::R7_AtomicOrder));
}

TEST(DnalintR7, FreeFunctionsAndNonSrcAreExempt)
{
    // std::exchange is not an atomic op: only member-call syntax counts.
    const std::string src = R"cpp(
        void f(int &x) {
            int old = std::exchange(x, 7);
            auto v = load();
        }
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, emptyContext()),
                         dnalint::R7_AtomicOrder));
    const std::string atomic_src = "void f(A &a) { a.store(1); }\n";
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.cc", atomic_src,
                                   emptyContext()),
                         dnalint::R7_AtomicOrder));
}

TEST(DnalintR7, StaleRelaxedAllowlistEntryIsFlagged)
{
    LintContext ctx = emptyContext();
    ctx.relaxed_allowlist.insert("src/gone.cc");
    ProjectFacts facts; // No relaxed use anywhere.
    EXPECT_TRUE(hasRule(checkProject(ctx, facts), dnalint::R7_AtomicOrder));
    facts.relaxed_files.insert("src/gone.cc");
    EXPECT_FALSE(hasRule(checkProject(ctx, facts), dnalint::R7_AtomicOrder));
}

// ------------------------------------------------- R8 module layering

TEST(DnalintR8, FlagsUpwardInclude)
{
    // obs (layer 0) must not reach up into core (layer 5).
    const auto findings = checkFile(
        "src/obs/metrics.cc", "#include \"core/pipeline.hh\"\n",
        emptyContext(), dnalint::R8_Layering);
    ASSERT_TRUE(hasRule(findings, dnalint::R8_Layering));
    EXPECT_NE(findings[0].message.find("upward"), std::string::npos);
}

TEST(DnalintR8, FlagsSidewaysInclude)
{
    // codec and clustering share layer 3: neither may include the other.
    const auto findings = checkFile(
        "src/codec/matrix_codec.cc", "#include \"clustering/clusterer.hh\"\n",
        emptyContext(), dnalint::R8_Layering);
    ASSERT_TRUE(hasRule(findings, dnalint::R8_Layering));
    EXPECT_NE(findings[0].message.find("sideways"), std::string::npos);
}

TEST(DnalintR8, FlagsArchiveIncludingServer)
{
    // server (layer 7) sits on top of archive (layer 6): the archive
    // must never reach up into the daemon's protocol or scheduler.
    const auto findings = checkFile(
        "src/archive/archive.cc", "#include \"server/protocol.hh\"\n",
        emptyContext(), dnalint::R8_Layering);
    ASSERT_TRUE(hasRule(findings, dnalint::R8_Layering));
    EXPECT_NE(findings[0].message.find("upward"), std::string::npos);
}

TEST(DnalintR8, AcceptsServerIncludingArchive)
{
    const std::string src = R"cpp(
        #include "server/backend.hh"
        #include "archive/archive.hh"
        #include "obs/metrics.hh"
        #include "util/sync.hh"
    )cpp";
    EXPECT_FALSE(hasRule(
        checkFile("src/server/archive_backend.cc", src, emptyContext()),
        dnalint::R8_Layering));
}

TEST(DnalintR8, AcceptsDownwardAndIntraModuleIncludes)
{
    const std::string src = R"cpp(
        #include "archive/manifest.hh"
        #include "core/pipeline.hh"
        #include "util/crc32.hh"
        #include "obs/metrics.hh"
        #include <vector>
    )cpp";
    EXPECT_FALSE(hasRule(
        checkFile("src/archive/archive.cc", src, emptyContext()),
        dnalint::R8_Layering));
}

TEST(DnalintR8, UnknownTargetModuleIsFlagged)
{
    const auto findings = checkFile(
        "src/core/pipeline.cc", "#include \"newmod/thing.hh\"\n",
        emptyContext());
    EXPECT_TRUE(hasRule(findings, dnalint::R8_Layering));
}

TEST(DnalintR8, VocabularyHeadersAndNonSrcAreExempt)
{
    // The annotation vocabulary is layer-free: even obs at the bottom
    // may pull it in.
    const std::string src = R"cpp(
        #include "util/sync.hh"
        #include "util/thread_annotations.hh"
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/obs/metrics.hh", src, emptyContext()),
                         dnalint::R8_Layering));
    // Tests and tools may include anything.
    EXPECT_FALSE(hasRule(checkFile("tests/obs/t.cc",
                                   "#include \"core/pipeline.hh\"\n",
                                   emptyContext()),
                         dnalint::R8_Layering));
}

TEST(DnalintR8, ExemptionStalenessFlagsMissingAndNeverCrossing)
{
    LintContext ctx = emptyContext();
    ProjectFacts facts;
    // Every exempt header exists and is seen crossing a layer boundary:
    // the exemption earns its keep, no findings.
    ctx.project_files.insert("src/core/pipeline.cc");
    for (const std::string &header : dnalint::layeringExemptHeaders()) {
        ctx.project_files.insert(header);
        facts.exempt_headers_crossing.insert(header);
    }
    EXPECT_FALSE(
        hasRule(checkProject(ctx, facts), dnalint::R8_Layering));

    // A header that never crosses any more is a stale exemption.
    ProjectFacts none_crossing;
    const auto stale = checkProject(ctx, none_crossing);
    ASSERT_TRUE(hasRule(stale, dnalint::R8_Layering));
    bool mentions_stale = false;
    for (const Finding &f : stale)
        mentions_stale = mentions_stale ||
                         f.message.find("stale") != std::string::npos;
    EXPECT_TRUE(mentions_stale);

    // A header that no longer exists must be dropped from the list.
    LintContext missing = emptyContext();
    missing.project_files.insert("src/core/pipeline.cc");
    const auto gone = checkProject(missing, facts);
    ASSERT_TRUE(hasRule(gone, dnalint::R8_Layering));
    bool mentions_remove = false;
    for (const Finding &f : gone)
        mentions_remove =
            mentions_remove ||
            f.message.find("layeringExemptHeaders") != std::string::npos;
    EXPECT_TRUE(mentions_remove);
}

TEST(DnalintR8, ExemptionStalenessIsQuietWithoutSrcContext)
{
    // Fixture-driven checkProject calls with no src/ files (every other
    // rule's tests) must not trip the staleness checks.
    EXPECT_FALSE(hasRule(checkProject(emptyContext(), ProjectFacts{}),
                         dnalint::R8_Layering));
}

TEST(DnalintR8, CheckFileRecordsExemptCrossings)
{
    ProjectFacts facts;
    // obs (rank 0) pulling in util/hot.hh (rank 1) crosses upward: the
    // exemption is what makes it legal, so the crossing is recorded.
    checkFile("src/obs/metrics.hh", "#include \"util/hot.hh\"\n",
              emptyContext(), AllRules, &facts);
    EXPECT_EQ(facts.exempt_headers_crossing.count("src/util/hot.hh"),
              1U);
    // core (rank 5) including it is a plain downward include — no
    // exemption needed, nothing recorded.
    ProjectFacts downward;
    checkFile("src/core/pipeline.cc", "#include \"util/hot.hh\"\n",
              emptyContext(), AllRules, &downward);
    EXPECT_TRUE(downward.exempt_headers_crossing.empty());
}

// ------------------------------------------------------------- output

TEST(DnalintFormat, RendersPathLineRuleMessage)
{
    const Finding finding{"src/a.cc", 12, dnalint::R2_ThrowBoundary, "msg"};
    EXPECT_EQ(dnalint::format(finding), "src/a.cc:12: [R2] msg");
    const Finding project{"", 0, dnalint::R3_SelfContainment, "msg"};
    EXPECT_EQ(dnalint::format(project), "(project):0: [R3] msg");
}

} // namespace
