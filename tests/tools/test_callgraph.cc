/**
 * @file
 * Unit tests for dnalint's interprocedural call-graph engine
 * (tools/dnalint/callgraph.hh): the function extractor, call
 * resolution, and the R9/R10/R11 rules, plus the SARIF writer —
 * all driven by fixture sources.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dnalint/callgraph.hh"
#include "dnalint/dnalint.hh"
#include "dnalint/sarif.hh"

namespace
{

using dnalint::buildCallGraph;
using dnalint::CallGraph;
using dnalint::checkCallGraph;
using dnalint::computeAllocCounts;
using dnalint::extractFunctions;
using dnalint::FileFunctions;
using dnalint::Finding;
using dnalint::FunctionInfo;
using dnalint::lex;
using dnalint::LintContext;

FileFunctions
extract(const std::string &path, const std::string &src)
{
    return extractFunctions(path, lex(src));
}

const FunctionInfo *
findFn(const FileFunctions &file, const std::string &qualified)
{
    for (const FunctionInfo &fn : file.functions) {
        if (fn.qualified == qualified)
            return &fn;
    }
    return nullptr;
}

std::size_t
countRule(const std::vector<Finding> &findings, dnalint::Rule rule)
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [rule](const Finding &f) { return f.rule == rule; }));
}

/** First finding message for @p rule ("" if none). */
std::string
messageFor(const std::vector<Finding> &findings, dnalint::Rule rule)
{
    for (const Finding &f : findings) {
        if (f.rule == rule)
            return f.message;
    }
    return "";
}

// ------------------------------------------------------------ extractor

TEST(CallgraphExtract, FreeFunctionAndNamespaceQualification)
{
    const auto file = extract("src/core/x.cc", R"cpp(
        namespace dnastore {
        namespace detail {
        int helper(int a) { return a + 1; }
        } // namespace detail
        int outer() { return detail::helper(1); }
        } // namespace dnastore
    )cpp");
    ASSERT_EQ(file.functions.size(), 2U);
    EXPECT_NE(findFn(file, "dnastore::detail::helper"), nullptr);
    const FunctionInfo *outer = findFn(file, "dnastore::outer");
    ASSERT_NE(outer, nullptr);
    ASSERT_EQ(outer->calls.size(), 1U);
    EXPECT_EQ(outer->calls[0].written, "detail::helper");
    EXPECT_EQ(outer->calls[0].name, "helper");
}

TEST(CallgraphExtract, OutOfLineMethodsCtorInitListAndDtor)
{
    const auto file = extract("src/core/x.cc", R"cpp(
        namespace dnastore {
        Pipeline::Pipeline(Config cfg) : cfg_(std::move(cfg)), n_(0) {
            setup();
        }
        Pipeline::~Pipeline() { teardown(); }
        int Pipeline::run(int x) const noexcept { return step(x); }
        } // namespace dnastore
    )cpp");
    ASSERT_EQ(file.functions.size(), 3U);
    const FunctionInfo *ctor = findFn(file, "dnastore::Pipeline::Pipeline");
    ASSERT_NE(ctor, nullptr);
    EXPECT_EQ(ctor->class_name, "Pipeline");
    const FunctionInfo *run = findFn(file, "dnastore::Pipeline::run");
    ASSERT_NE(run, nullptr);
    EXPECT_TRUE(run->is_noexcept);
    ASSERT_EQ(run->calls.size(), 1U);
    EXPECT_EQ(run->calls[0].name, "step");
    EXPECT_NE(findFn(file, "dnastore::Pipeline::~Pipeline"), nullptr);
}

TEST(CallgraphExtract, InClassDefinitionsAndAccessLevels)
{
    const auto file = extract("src/archive/a.hh", R"cpp(
        namespace dnastore {
        class Archive {
          public:
            int get(int k) { return fetch(k); }
            static Archive open();
          private:
            int fetch(int k);
        };
        } // namespace dnastore
    )cpp");
    const FunctionInfo *get = findFn(file, "dnastore::Archive::get");
    ASSERT_NE(get, nullptr);
    EXPECT_EQ(get->class_name, "Archive");

    bool saw_public_open = false;
    bool saw_private_fetch = false;
    for (const auto &decl : file.method_decls) {
        if (decl.class_name == "Archive" && decl.name == "open")
            saw_public_open = decl.is_public;
        if (decl.class_name == "Archive" && decl.name == "fetch")
            saw_private_fetch = !decl.is_public;
    }
    EXPECT_TRUE(saw_public_open);
    EXPECT_TRUE(saw_private_fetch);
}

TEST(CallgraphExtract, TemplatesAndTrailingReturnTypes)
{
    const auto file = extract("src/util/x.hh", R"cpp(
        namespace dnastore {
        template <typename F>
        auto submitTask(F &&f) -> std::future<int> {
            return pool().submit(std::forward<F>(f));
        }
        } // namespace dnastore
    )cpp");
    const FunctionInfo *fn = findFn(file, "dnastore::submitTask");
    ASSERT_NE(fn, nullptr);
    bool calls_submit = false;
    for (const auto &call : fn->calls)
        calls_submit = calls_submit || call.name == "submit";
    EXPECT_TRUE(calls_submit);
}

TEST(CallgraphExtract, HotMarkerThrowsAllocationsAndLockScopes)
{
    const auto file = extract("src/util/x.cc", R"cpp(
        namespace dnastore {
        DNASTORE_HOT int hotPath(std::vector<int> &v) {
            auto *p = new int(3);
            v.push_back(*p);
            return std::string("x").size();
        }
        void locked() {
            MutexLock lock(mu);
            mu2.lock();
        }
        void thrower(bool b) {
            if (b)
                throw std::runtime_error("boom");
            try {
                mayThrow();
            } catch (...) {
            }
        }
        } // namespace dnastore
    )cpp");
    const FunctionInfo *hot = findFn(file, "dnastore::hotPath");
    ASSERT_NE(hot, nullptr);
    EXPECT_TRUE(hot->is_hot);
    // new + unreserved push_back + std::string temporary.
    EXPECT_EQ(hot->alloc_sites.size(), 3U);

    const FunctionInfo *locked = findFn(file, "dnastore::locked");
    ASSERT_NE(locked, nullptr);
    ASSERT_EQ(locked->lock_sites.size(), 2U);
    EXPECT_FALSE(locked->lock_sites[0].under_lock); // the MutexLock
    EXPECT_TRUE(locked->lock_sites[1].under_lock);  // .lock() under it

    const FunctionInfo *thrower = findFn(file, "dnastore::thrower");
    ASSERT_NE(thrower, nullptr);
    ASSERT_EQ(thrower->throw_sites.size(), 1U);
    EXPECT_FALSE(thrower->throw_sites[0].in_try);
    ASSERT_EQ(thrower->calls.size(), 1U);
    EXPECT_TRUE(thrower->calls[0].in_try);
}

TEST(CallgraphExtract, ReservedPushBackIsNotAnAllocation)
{
    const auto file = extract("src/util/x.cc", R"cpp(
        namespace dnastore {
        void fill(std::vector<int> &v, std::vector<int> &w) {
            v.reserve(16);
            v.push_back(1);
            w.push_back(2);
        }
        } // namespace dnastore
    )cpp");
    const FunctionInfo *fn = findFn(file, "dnastore::fill");
    ASSERT_NE(fn, nullptr);
    // Only the unreserved receiver counts.
    EXPECT_EQ(fn->alloc_sites.size(), 1U);
}

// ----------------------------------------------------------- resolution

TEST(CallgraphBuild, MemberCallsNeverAliasStdlibNames)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/archive/a.cc", R"cpp(
        namespace dnastore {
        int Archive::get(int k) { return k; }
        int Archive::use(std::unique_ptr<int> &p) { return *p.get(); }
        } // namespace dnastore
    )cpp"));
    const CallGraph graph = buildCallGraph(files);
    const auto use = graph.findBySuffix("Archive::use");
    ASSERT_EQ(use.size(), 1U);
    // p.get() must NOT resolve to Archive::get.
    for (const auto &targets : graph.targets[use[0]])
        EXPECT_TRUE(targets.empty());
}

TEST(CallgraphBuild, QualifiedSuffixMatchIsComponentwise)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/a.cc", R"cpp(
        namespace dnastore {
        int Pipeline::run() { return 1; }
        int DryRunPipeline::run() { return 2; }
        } // namespace dnastore
    )cpp"));
    const CallGraph graph = buildCallGraph(files);
    // "Pipeline::run" matches only the exact component suffix, not
    // DryRunPipeline::run.
    EXPECT_EQ(graph.findBySuffix("Pipeline::run").size(), 1U);
}

// ------------------------------------------------------------------ R9

/** The acceptance-criteria fixture: a vector::at three calls deep below
 *  Pipeline::run must be caught, with the full chain printed. */
TEST(CallgraphR9, CatchesSeededAtThreeCallsDeep)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/pipeline.cc", R"cpp(
        namespace dnastore {
        int stepThree(const std::vector<int> &v) { return v.at(9); }
        int stepTwo(const std::vector<int> &v) { return stepThree(v); }
        int stepOne(const std::vector<int> &v) { return stepTwo(v); }
        int Pipeline::run(const std::vector<int> &v) {
            return stepOne(v);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    ASSERT_EQ(countRule(findings, dnalint::R9_NoThrowReach), 1U);
    const std::string msg =
        messageFor(findings, dnalint::R9_NoThrowReach);
    // The full chain, in order, entry first.
    const std::size_t run = msg.find("dnastore::Pipeline::run");
    const std::size_t one = msg.find("dnastore::stepOne");
    const std::size_t two = msg.find("dnastore::stepTwo");
    const std::size_t three = msg.find("dnastore::stepThree");
    ASSERT_NE(run, std::string::npos);
    ASSERT_NE(one, std::string::npos);
    ASSERT_NE(two, std::string::npos);
    ASSERT_NE(three, std::string::npos);
    EXPECT_LT(run, one);
    EXPECT_LT(one, two);
    EXPECT_LT(two, three);
}

TEST(CallgraphR9, PublicArchiveMethodsAreEntryPointsPrivateAreNot)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/archive/archive.hh", R"cpp(
        namespace dnastore {
        class Archive {
          public:
            int get(int k);
          private:
            int helperOnly(int k);
        };
        } // namespace dnastore
    )cpp"));
    files.push_back(extract("src/archive/archive.cc", R"cpp(
        namespace dnastore {
        int Archive::get(int k) { return parse(k); }
        int Archive::helperOnly(int k) { return orphanParse(k); }
        int parse(int k) { return std::stoi("x"); }
        int orphanParse(int k) { return std::stoi("y"); }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    // parse (below public get) is flagged; orphanParse (below the
    // private helper, which is not an entry point and is not called
    // from one) is not.
    ASSERT_EQ(countRule(findings, dnalint::R9_NoThrowReach), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R9_NoThrowReach)
                  .find("dnastore::parse"),
              std::string::npos);
}

TEST(CallgraphR9, TryBlockSwallowsTheSubtree)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/pipeline.cc", R"cpp(
        namespace dnastore {
        int risky(const std::string &s) { return std::stoi(s); }
        int Pipeline::run(const std::string &s) {
            try {
                return risky(s);
            } catch (...) {
                return -1;
            }
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    EXPECT_EQ(countRule(findings, dnalint::R9_NoThrowReach), 0U);
}

TEST(CallgraphR9, SubstrWithZeroStartIsSafe)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/pipeline.cc", R"cpp(
        namespace dnastore {
        std::string Pipeline::run(const std::string &s) {
            return s.substr(0, 5);
        }
        std::string Pipeline::runFromReads(const std::string &s) {
            return s.substr(3);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    // substr(0, n) can never throw; substr(3) can.
    ASSERT_EQ(countRule(findings, dnalint::R9_NoThrowReach), 1U);
    EXPECT_EQ(findings[0].file, "src/core/pipeline.cc");
}

TEST(CallgraphR9, AllowlistCutsTheSubtreeAndStaleEntriesAreFlagged)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/pipeline.cc", R"cpp(
        namespace dnastore {
        int parseBounded(const std::string &s) { return std::stoi(s); }
        int Pipeline::run(const std::string &s) {
            return parseBounded(s);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    ctx.nothrow_allowlist.insert(
        "src/core/pipeline.cc:dnastore::parseBounded");
    EXPECT_EQ(countRule(checkCallGraph(ctx, files,
                                       dnalint::R9_NoThrowReach),
                        dnalint::R9_NoThrowReach),
              0U);

    // A stale entry (function gone) is itself a finding.
    ctx.nothrow_allowlist.insert("src/core/gone.cc:dnastore::vanished");
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    ASSERT_EQ(countRule(findings, dnalint::R9_NoThrowReach), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R9_NoThrowReach)
                  .find("stale"),
              std::string::npos);
}

TEST(CallgraphR9, ThrowInR2BoundaryFileIsExempt)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/util/args.cc", R"cpp(
        namespace dnastore {
        int parseArgs(int n) {
            if (n < 0)
                throw std::runtime_error("bad");
            return n;
        }
        } // namespace dnastore
    )cpp"));
    files.push_back(extract("src/core/pipeline.cc", R"cpp(
        namespace dnastore {
        int Pipeline::run(int n) { return parseArgs(n); }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto unlisted =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    EXPECT_EQ(countRule(unlisted, dnalint::R9_NoThrowReach), 1U);

    ctx.throw_allowlist.insert("src/util/args.cc");
    const auto listed =
        checkCallGraph(ctx, files, dnalint::R9_NoThrowReach);
    EXPECT_EQ(countRule(listed, dnalint::R9_NoThrowReach), 0U);
}

// ----------------------------------------------------------------- R10

namespace
{

std::vector<FileFunctions>
hotFixture()
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/clustering/c.cc", R"cpp(
        namespace dnastore {
        int helper(std::vector<int> &v) {
            v.push_back(1);
            return new int(2) != nullptr;
        }
        DNASTORE_HOT int hotEntry(std::vector<int> &v) {
            v.push_back(3);
            return helper(v);
        }
        } // namespace dnastore
    )cpp"));
    return files;
}

} // namespace

TEST(CallgraphR10, TransitiveCountsAndMissingEntry)
{
    const auto files = hotFixture();
    const auto counts = computeAllocCounts(buildCallGraph(files));
    ASSERT_EQ(counts.size(), 1U);
    // hotEntry's own push_back + helper's push_back + helper's new.
    EXPECT_EQ(counts.at("dnastore::hotEntry"), 3U);

    LintContext ctx; // no ratchet entry
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R10_AllocRatchet);
    ASSERT_EQ(countRule(findings, dnalint::R10_AllocRatchet), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R10_AllocRatchet)
                  .find("no ratchet entry"),
              std::string::npos);
}

TEST(CallgraphR10, IncreaseDecreaseMatchAndStale)
{
    const auto files = hotFixture();

    LintContext match;
    match.alloc_ratchet["dnastore::hotEntry"] = 3;
    EXPECT_EQ(countRule(checkCallGraph(match, files,
                                       dnalint::R10_AllocRatchet),
                        dnalint::R10_AllocRatchet),
              0U);

    LintContext increase;
    increase.alloc_ratchet["dnastore::hotEntry"] = 2;
    const auto inc_findings =
        checkCallGraph(increase, files, dnalint::R10_AllocRatchet);
    ASSERT_EQ(countRule(inc_findings, dnalint::R10_AllocRatchet), 1U);
    EXPECT_NE(messageFor(inc_findings, dnalint::R10_AllocRatchet)
                  .find("rose to 3"),
              std::string::npos);

    LintContext decrease;
    decrease.alloc_ratchet["dnastore::hotEntry"] = 5;
    const auto dec_findings =
        checkCallGraph(decrease, files, dnalint::R10_AllocRatchet);
    ASSERT_EQ(countRule(dec_findings, dnalint::R10_AllocRatchet), 1U);
    EXPECT_NE(messageFor(dec_findings, dnalint::R10_AllocRatchet)
                  .find("tighten"),
              std::string::npos);

    LintContext stale;
    stale.alloc_ratchet["dnastore::hotEntry"] = 3;
    stale.alloc_ratchet["dnastore::removedFunction"] = 1;
    const auto stale_findings =
        checkCallGraph(stale, files, dnalint::R10_AllocRatchet);
    ASSERT_EQ(countRule(stale_findings, dnalint::R10_AllocRatchet), 1U);
    EXPECT_NE(messageFor(stale_findings, dnalint::R10_AllocRatchet)
                  .find("stale"),
              std::string::npos);
}

// ----------------------------------------------------------------- R11

TEST(CallgraphR11, IoUnderLockDirectAndTransitive)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/archive/a.cc", R"cpp(
        namespace dnastore {
        void writeState(const std::string &path) {
            std::ofstream out(path);
        }
        void Archive::saveLocked() {
            MutexLock lock(mu);
            writeState("x");
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R11_BlockingUnderLock);
    ASSERT_EQ(countRule(findings, dnalint::R11_BlockingUnderLock), 1U);
    const std::string msg =
        messageFor(findings, dnalint::R11_BlockingUnderLock);
    EXPECT_NE(msg.find("file I/O"), std::string::npos);
    EXPECT_NE(msg.find("writeState"), std::string::npos);
}

TEST(CallgraphR11, SubmitUnderLock)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/core/p.cc", R"cpp(
        namespace dnastore {
        void Pipeline::dispatch() {
            MutexLock lock(mu);
            pool.submit(task);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R11_BlockingUnderLock);
    ASSERT_EQ(countRule(findings, dnalint::R11_BlockingUnderLock), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R11_BlockingUnderLock)
                  .find("submit"),
              std::string::npos);
}

TEST(CallgraphR11, NestedMutexAcquisition)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/clustering/c.cc", R"cpp(
        namespace dnastore {
        void mergeLocked() {
            MutexLock outer(dsu_mutex);
            MutexLock inner(stats_mutex);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R11_BlockingUnderLock);
    ASSERT_EQ(countRule(findings, dnalint::R11_BlockingUnderLock), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R11_BlockingUnderLock)
                  .find("nested mutex"),
              std::string::npos);
}

TEST(CallgraphR11, LockReleasedBeforeBlockingIsClean)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/archive/a.cc", R"cpp(
        namespace dnastore {
        void Archive::saveUnlocked(const std::string &path) {
            {
                MutexLock lock(mu);
                state = 1;
            }
            std::ofstream out(path);
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    EXPECT_EQ(countRule(checkCallGraph(ctx, files,
                                       dnalint::R11_BlockingUnderLock),
                        dnalint::R11_BlockingUnderLock),
              0U);
}

TEST(CallgraphR11, AllowlistedAndStaleEntries)
{
    std::vector<FileFunctions> files;
    files.push_back(extract("src/util/logging.cc", R"cpp(
        namespace dnastore {
        void logMessage(const std::string &line) {
            MutexLock lock(output_mutex);
            std::cerr << line;
        }
        } // namespace dnastore
    )cpp"));
    LintContext ctx;
    EXPECT_EQ(countRule(checkCallGraph(ctx, files,
                                       dnalint::R11_BlockingUnderLock),
                        dnalint::R11_BlockingUnderLock),
              1U);

    ctx.blocking_allowlist.insert(
        "src/util/logging.cc:dnastore::logMessage");
    EXPECT_EQ(countRule(checkCallGraph(ctx, files,
                                       dnalint::R11_BlockingUnderLock),
                        dnalint::R11_BlockingUnderLock),
              0U);

    ctx.blocking_allowlist.insert("src/gone.cc:dnastore::vanished");
    const auto findings =
        checkCallGraph(ctx, files, dnalint::R11_BlockingUnderLock);
    ASSERT_EQ(countRule(findings, dnalint::R11_BlockingUnderLock), 1U);
    EXPECT_NE(messageFor(findings, dnalint::R11_BlockingUnderLock)
                  .find("stale"),
              std::string::npos);
}

// ---------------------------------------------------------------- SARIF

TEST(Sarif, StructureRulesAndLocations)
{
    std::vector<Finding> findings;
    findings.push_back({"src/core/pipeline.cc", 42,
                        dnalint::R9_NoThrowReach,
                        "chain with \"quotes\" and\nnewline"});
    findings.push_back({"", 0, dnalint::R10_AllocRatchet,
                        "project-level finding"});
    const std::string sarif = dnalint::toSarif(findings);

    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"dnalint\""), std::string::npos);
    // Every rule is declared.
    for (const auto &info : dnalint::ruleTable()) {
        EXPECT_NE(sarif.find("\"id\": \"" + std::string(info.name) + "\""),
                  std::string::npos);
    }
    EXPECT_NE(sarif.find("\"ruleId\": \"R9\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
    // Escapes applied; no raw newline inside the message string.
    EXPECT_NE(sarif.find("\\\"quotes\\\" and\\nnewline"),
              std::string::npos);
    // The project-level finding has no locations array.
    EXPECT_NE(sarif.find("\"ruleId\": \"R10\""), std::string::npos);
}

TEST(Sarif, EmptyFindingsIsStillAValidRun)
{
    const std::string sarif = dnalint::toSarif({});
    EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

} // namespace
