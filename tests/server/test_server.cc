/**
 * @file
 * End-to-end server tests over real loopback sockets: the dnastored
 * event loop + scheduler serving put/get/ls/stat/ping to concurrent
 * clients, including the ISSUE acceptance workload — 32 clients with
 * Zipfian popularity over a 10-object backend, zero failed requests,
 * coalescing observed — and typed (not hung) overload rejection.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.hh"
#include "server/server.hh"
#include "server/fake_backend.hh"
#include "util/random.hh"

namespace dnastore::server
{
namespace
{

using testing::FakeBackend;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** A running server over a FakeBackend plus its serve() thread. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerConfig config = {})
        : server_(backend, config)
    {
        EXPECT_EQ(server_.start(), ServerStatus::Ok);
        thread_ = std::thread([this] { server_.serve(); });
    }

    ~ServerFixture()
    {
        server_.requestDrain();
        thread_.join();
    }

    std::uint16_t port() const { return server_.port(); }
    Server &server() { return server_; }

    FakeBackend backend;

  private:
    Server server_;
    std::thread thread_;
};

TEST(Server, PingPutGetLsStatRoundTrip)
{
    ServerFixture fx;
    Client client;
    ASSERT_TRUE(client.connectTo(fx.port(), 10000)) << client.error();

    const ClientReply pong = client.ping(bytes("hello"));
    EXPECT_TRUE(pong.ok()) << pong.error;
    EXPECT_EQ(pong.data, bytes("hello"));

    const std::vector<std::uint8_t> payload = bytes("the-object-bytes");
    const ClientReply put = client.put("obj", payload);
    ASSERT_TRUE(put.ok()) << put.error;
    EXPECT_NE(put.json.find("\"name\""), std::string::npos);

    const ClientReply get = client.get("obj");
    ASSERT_TRUE(get.ok()) << get.error;
    EXPECT_EQ(get.data, payload);

    const ClientReply ls = client.ls();
    ASSERT_TRUE(ls.ok()) << ls.error;
    EXPECT_NE(ls.json.find("archive_ls"), std::string::npos);

    const ClientReply stat = client.stat("obj");
    ASSERT_TRUE(stat.ok()) << stat.error;
    EXPECT_NE(stat.json.find("obj"), std::string::npos);
}

TEST(Server, MissingObjectIsTypedNotFound)
{
    ServerFixture fx;
    Client client;
    ASSERT_TRUE(client.connectTo(fx.port(), 10000)) << client.error();
    const ClientReply reply = client.get("missing");
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status, ServerStatus::NotFound);
    // The connection survives a NotFound: the next request works.
    EXPECT_TRUE(client.ping(bytes("still-alive")).ok());
}

TEST(Server, DuplicatePutIsTypedAlreadyExists)
{
    ServerFixture fx;
    Client client;
    ASSERT_TRUE(client.connectTo(fx.port(), 10000)) << client.error();
    ASSERT_TRUE(client.put("dup", bytes("x")).ok());
    const ClientReply again = client.put("dup", bytes("y"));
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.status, ServerStatus::AlreadyExists);
}

TEST(Server, ZipfianLoadCompletesWithZeroFailuresAndCoalesces)
{
    // The ISSUE acceptance workload: 32 concurrent clients, Zipfian
    // popularity over 10 objects, every request must succeed byte-exact
    // and the coalescing counter must move.
    constexpr std::size_t kClients = 32;
    constexpr std::size_t kObjects = 10;
    constexpr std::size_t kRequestsPerClient = 8;

    ServerConfig config;
    config.scheduler.num_threads = 4;
    config.scheduler.max_inflight = kClients * 2;
    ServerFixture fx(config);

    std::vector<std::vector<std::uint8_t>> payloads(kObjects);
    for (std::size_t i = 0; i < kObjects; ++i) {
        payloads[i] = bytes("object-" + std::to_string(i) + "-payload");
        fx.backend.add("obj" + std::to_string(i), payloads[i]);
    }
    // Hold fetches shut until every client's first get has been
    // admitted: 32 concurrent gets over 10 names guarantees coalescing
    // by pigeonhole, rather than hoping the threads happen to overlap.
    fx.backend.fetch_gate.close();

    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ZipfSampler zipf(kObjects, 1.0, 0x5eedULL + c);
            Client client;
            if (!client.connectTo(fx.port(), 30000)) {
                failures.fetch_add(kRequestsPerClient);
                return;
            }
            for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
                const std::size_t pick = zipf.next();
                const ClientReply reply =
                    client.get("obj" + std::to_string(pick));
                if (!reply.ok() || reply.data != payloads[pick])
                    failures.fetch_add(1);
            }
        });
    }
    while (failures.load() == 0 &&
           fx.server().counters().requests < kClients)
        std::this_thread::yield();
    fx.backend.fetch_gate.open();
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    const SchedulerCounters counters = fx.server().counters();
    EXPECT_EQ(counters.requests, kClients * kRequestsPerClient);
    EXPECT_GT(counters.coalesced_gets, 0u);
    EXPECT_GT(counters.batches, 0u);
    EXPECT_EQ(counters.rejected_overload, 0u);
}

TEST(Server, OverloadIsRejectedTypedNotHung)
{
    // Admission limit 1 with the backend gated shut: the second
    // concurrent get must come back Overloaded promptly — a typed
    // reply, not a queued-forever hang.
    ServerConfig config;
    config.scheduler.num_threads = 2;
    config.scheduler.max_inflight = 1;
    config.scheduler.batch_max = 1;
    ServerFixture fx(config);
    fx.backend.add("a", bytes("a"));
    fx.backend.fetch_gate.close();

    Client blocker;
    ASSERT_TRUE(blocker.connectTo(fx.port(), 10000)) << blocker.error();
    std::thread blocked([&] {
        const ClientReply reply = blocker.get("a");
        EXPECT_TRUE(reply.ok()) << reply.error;
    });

    // Wait until the blocked get is admitted (inflight = 1).
    while (fx.server().counters().requests < 1)
        std::this_thread::yield();

    Client shed;
    ASSERT_TRUE(shed.connectTo(fx.port(), 10000)) << shed.error();
    const ClientReply reply = shed.get("a");
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status, ServerStatus::Overloaded);
    EXPECT_EQ(fx.server().counters().rejected_overload, 1u);

    fx.backend.fetch_gate.open();
    blocked.join();
}

/**
 * Connect, write @p raw bytes verbatim, then read until the server
 * closes the connection; returns everything the server sent back.
 */
std::vector<std::uint8_t>
sendRawAndDrain(std::uint16_t port, const std::vector<std::uint8_t> &raw)
{
    std::vector<std::uint8_t> got;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return got;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
              static_cast<ssize_t>(raw.size()));
    std::uint8_t buf[512];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        got.insert(got.end(), buf, buf + n);
    }
    ::close(fd);
    return got;
}

TEST(Server, CorruptFrameGetsTypedErrorAndServerSurvives)
{
    ServerFixture fx;
    fx.backend.add("a", bytes("a"));

    // A full header's worth of garbage: the server must reply with a
    // typed ProtocolError frame and close that session — not crash,
    // not hang, not take other sessions down with it.
    const std::vector<std::uint8_t> reply = sendRawAndDrain(
        fx.port(), bytes("this is definitely not a valid frame"));
    FrameDecoder decoder;
    decoder.feed(reply.data(), reply.size());
    Frame frame;
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::Ready);
    EXPECT_EQ(frame.type, static_cast<std::uint8_t>(MsgType::Error));
    ErrorBody err;
    ASSERT_TRUE(tryParseErrorBody(frame.body, err));
    EXPECT_EQ(err.status, ServerStatus::ProtocolError);

    // A well-behaved client is unaffected.
    Client good;
    ASSERT_TRUE(good.connectTo(fx.port(), 10000)) << good.error();
    EXPECT_TRUE(good.get("a").ok());
}

} // namespace
} // namespace dnastore::server
