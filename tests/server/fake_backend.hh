/**
 * @file
 * Deterministic in-memory Backend for scheduler and server tests: a
 * name→bytes map with a gate that holds fetches open, so tests can pile
 * up concurrent requests and observe coalescing, batching and admission
 * decisions without real (seconds-long) DNA decodes.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "server/backend.hh"
#include "util/sync.hh"

namespace dnastore::server::testing
{

/** Reusable open/closed latch for holding backend calls. */
class Gate
{
  public:
    void
    open()
    {
        MutexLock lock(mu_);
        open_ = true;
        cv_.notifyAll();
    }

    void
    close()
    {
        MutexLock lock(mu_);
        open_ = false;
    }

    void
    await()
    {
        MutexLock lock(mu_);
        while (!open_)
            cv_.wait(mu_);
    }

  private:
    Mutex mu_;
    CondVar cv_;
    bool open_ DNASTORE_GUARDED_BY(mu_) = true;
};

class FakeBackend final : public Backend
{
  public:
    /** Pre-populate an object. */
    void
    add(const std::string &name, std::vector<std::uint8_t> data)
    {
        MutexLock lock(mu_);
        objects_[name] = std::move(data);
    }

    [[nodiscard]] std::vector<FetchResult>
    fetchMany(const std::vector<std::string> &names) override
    {
        {
            MutexLock lock(mu_);
            ++fetches_;
            batch_sizes_.push_back(names.size());
            for (const std::string &name : names)
                ops_.push_back("fetch:" + name);
        }
        fetch_gate.await();
        std::vector<FetchResult> results(names.size());
        MutexLock lock(mu_);
        for (std::size_t i = 0; i < names.size(); ++i) {
            auto it = objects_.find(names[i]);
            if (it == objects_.end()) {
                results[i].status = ServerStatus::NotFound;
                results[i].error = "no object named '" + names[i] + "'";
            } else {
                results[i].status = ServerStatus::Ok;
                results[i].data = it->second;
            }
        }
        return results;
    }

    [[nodiscard]] StoreResult
    storeObject(const std::string &name,
                const std::vector<std::uint8_t> &data) override
    {
        StoreResult result;
        MutexLock lock(mu_);
        ops_.push_back("store:" + name);
        if (objects_.count(name) != 0) {
            result.status = ServerStatus::AlreadyExists;
            result.error = "object '" + name + "' already exists";
            return result;
        }
        objects_[name] = data;
        result.status = ServerStatus::Ok;
        result.receipt_json = "{\"name\":\"" + name + "\"}";
        return result;
    }

    [[nodiscard]] MetaResult
    list() override
    {
        MetaResult result;
        MutexLock lock(mu_);
        ops_.push_back("ls");
        result.status = ServerStatus::Ok;
        result.json = "{\"schema\":\"dnastore.archive_ls\",\"num_objects\":" +
                      std::to_string(objects_.size()) + "}";
        return result;
    }

    [[nodiscard]] MetaResult
    statObject(const std::string &name) override
    {
        MetaResult result;
        MutexLock lock(mu_);
        ops_.push_back("stat:" + name);
        if (objects_.count(name) == 0) {
            result.status = ServerStatus::NotFound;
            result.error = "no object named '" + name + "'";
            return result;
        }
        result.status = ServerStatus::Ok;
        result.json = "{\"name\":\"" + name + "\"}";
        return result;
    }

    std::uint64_t
    fetches() const
    {
        MutexLock lock(mu_);
        return fetches_;
    }

    std::vector<std::size_t>
    batchSizes() const
    {
        MutexLock lock(mu_);
        return batch_sizes_;
    }

    /** Backend calls in arrival order ("fetch:a", "store:b", ...). */
    std::vector<std::string>
    ops() const
    {
        MutexLock lock(mu_);
        return ops_;
    }

    /** Fetches block here after being counted; open by default. */
    Gate fetch_gate;

  private:
    mutable Mutex mu_;
    std::map<std::string, std::vector<std::uint8_t>> objects_
        DNASTORE_GUARDED_BY(mu_);
    std::uint64_t fetches_ DNASTORE_GUARDED_BY(mu_) = 0;
    std::vector<std::size_t> batch_sizes_ DNASTORE_GUARDED_BY(mu_);
    std::vector<std::string> ops_ DNASTORE_GUARDED_BY(mu_);
};

} // namespace dnastore::server::testing
