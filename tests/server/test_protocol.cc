/**
 * @file
 * Wire-protocol unit tests (src/server/protocol.hh): frame round trips,
 * incremental decoding at every split point, and rejection of the
 * malformed inputs a hostile client can send — truncation, oversized
 * lengths, corrupt CRCs and version skew.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.hh"

namespace dnastore::server
{
namespace
{

Frame
makeFrame(MsgType type, std::uint64_t rid, std::string body)
{
    Frame frame;
    frame.type = static_cast<std::uint8_t>(type);
    frame.request_id = rid;
    frame.body.assign(body.begin(), body.end());
    return frame;
}

std::vector<std::uint8_t>
encodeOrDie(const Frame &frame)
{
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(encodeFrame(frame, out));
    return out;
}

TEST(Protocol, FrameRoundTrip)
{
    const Frame sent = makeFrame(MsgType::Get, 42, "photo.jpg");
    const std::vector<std::uint8_t> wire = encodeOrDie(sent);
    ASSERT_EQ(wire.size(), kHeaderSize + sent.body.size());

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Ready);
    EXPECT_EQ(got.version, kProtocolVersion);
    EXPECT_EQ(got.type, static_cast<std::uint8_t>(MsgType::Get));
    EXPECT_EQ(got.request_id, 42u);
    EXPECT_EQ(got.body, sent.body);
    EXPECT_EQ(decoder.next(got), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Protocol, EmptyBodyRoundTrip)
{
    const std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Ls, 7, ""));
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Ready);
    EXPECT_TRUE(got.body.empty());
}

TEST(Protocol, DecodesByteByByte)
{
    // Every possible resume point: feed one byte at a time and the
    // frame must pop out exactly once, at the last byte.
    const std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Put, 9, "name-and-payload"));
    FrameDecoder decoder;
    Frame got;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.feed(&wire[i], 1);
        ASSERT_EQ(decoder.next(got), FrameDecoder::Result::NeedMore)
            << "frame completed early at byte " << i;
    }
    decoder.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Ready);
    EXPECT_EQ(got.request_id, 9u);
}

TEST(Protocol, DecodesPipelinedFrames)
{
    std::vector<std::uint8_t> wire = encodeOrDie(makeFrame(
        MsgType::Ping, 1, "a"));
    ASSERT_TRUE(encodeFrame(makeFrame(MsgType::Ping, 2, "b"), wire));
    ASSERT_TRUE(encodeFrame(makeFrame(MsgType::Ping, 3, "c"), wire));

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    for (std::uint64_t rid = 1; rid <= 3; ++rid) {
        ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Ready);
        EXPECT_EQ(got.request_id, rid);
    }
    EXPECT_EQ(decoder.next(got), FrameDecoder::Result::NeedMore);
}

TEST(Protocol, TruncatedFrameStaysPending)
{
    const std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Get, 5, "half"));
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size() - 2);
    Frame got;
    // Not corrupt — just incomplete; a slow sender is not an attack.
    EXPECT_EQ(decoder.next(got), FrameDecoder::Result::NeedMore);
    decoder.feed(wire.data() + wire.size() - 2, 2);
    EXPECT_EQ(decoder.next(got), FrameDecoder::Result::Ready);
}

TEST(Protocol, BadMagicPoisons)
{
    std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Get, 5, "x"));
    wire[0] ^= 0xff;
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Corrupt);
    EXPECT_EQ(decoder.lastError(), FrameError::BadMagic);
    // Sticky: feeding a perfectly valid frame afterwards changes nothing.
    const std::vector<std::uint8_t> ok =
        encodeOrDie(makeFrame(MsgType::Ping, 6, ""));
    decoder.feed(ok.data(), ok.size());
    EXPECT_EQ(decoder.next(got), FrameDecoder::Result::Corrupt);
}

TEST(Protocol, VersionSkewRejected)
{
    std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Get, 5, "x"));
    wire[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
    // CRC still covers the old version bytes, but version is checked
    // first so the error is the actionable one.
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Corrupt);
    EXPECT_EQ(decoder.lastError(), FrameError::BadVersion);
}

TEST(Protocol, CorruptCrcRejected)
{
    std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Get, 5, "payload"));
    wire.back() ^= 0x01; // Flip one body bit; CRC no longer matches.
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Corrupt);
    EXPECT_EQ(decoder.lastError(), FrameError::BadCrc);
}

TEST(Protocol, OversizedLengthRejectedBeforeBuffering)
{
    // Claim a body one past the cap: rejected from the header alone,
    // without waiting for (or allocating) 8 MiB.
    std::vector<std::uint8_t> wire =
        encodeOrDie(makeFrame(MsgType::Put, 5, "small"));
    const std::uint32_t huge = kMaxFrameBody + 1;
    wire[16] = static_cast<std::uint8_t>(huge & 0xff);
    wire[17] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
    wire[18] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
    wire[19] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
    FrameDecoder decoder;
    decoder.feed(wire.data(), kHeaderSize);
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::Result::Corrupt);
    EXPECT_EQ(decoder.lastError(), FrameError::Oversized);
}

TEST(Protocol, EncodeRejectsOversizedBody)
{
    Frame frame = makeFrame(MsgType::Put, 1, "");
    frame.body.resize(kMaxFrameBody + 1);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(encodeFrame(frame, out));
    EXPECT_TRUE(out.empty());
}

TEST(Protocol, PutBodyRoundTrip)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    const std::vector<std::uint8_t> body = makePutBody("obj", payload);
    PutBody parsed;
    ASSERT_TRUE(tryParsePutBody(body, parsed));
    EXPECT_EQ(parsed.name, "obj");
    EXPECT_EQ(parsed.data, payload);
}

TEST(Protocol, PutBodyRejectsBadNameLength)
{
    // name_len claims more bytes than the body holds.
    PutBody parsed;
    EXPECT_FALSE(tryParsePutBody({0xff, 0xff, 'a'}, parsed));
    EXPECT_FALSE(tryParsePutBody({0x01}, parsed)); // Short header.
}

TEST(Protocol, ErrorBodyRoundTrip)
{
    const std::vector<std::uint8_t> body =
        makeErrorBody(ServerStatus::NotFound, "no such object");
    ErrorBody parsed;
    ASSERT_TRUE(tryParseErrorBody(body, parsed));
    EXPECT_EQ(parsed.status, ServerStatus::NotFound);
    EXPECT_EQ(parsed.message, "no such object");
}

TEST(Protocol, DataFrameChunkingStreamsWithMoreFlag)
{
    std::vector<std::uint8_t> payload(2500);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);

    std::vector<std::uint8_t> wire;
    appendDataFrames(wire, 77, payload, 1000);

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::vector<std::uint8_t> reassembled;
    Frame frame;
    std::size_t frames = 0;
    while (decoder.next(frame) == FrameDecoder::Result::Ready) {
        ++frames;
        EXPECT_EQ(frame.request_id, 77u);
        reassembled.insert(reassembled.end(), frame.body.begin(),
                           frame.body.end());
        if (!frame.more())
            break;
    }
    EXPECT_EQ(frames, 3u); // 1000 + 1000 + 500.
    EXPECT_EQ(reassembled, payload);
}

TEST(Protocol, EmptyPayloadYieldsOneTerminalDataFrame)
{
    std::vector<std::uint8_t> wire;
    appendDataFrames(wire, 5, {}, 1000);
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::Ready);
    EXPECT_TRUE(frame.body.empty());
    EXPECT_FALSE(frame.more());
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::NeedMore);
}

TEST(Protocol, StatusNamesAreStable)
{
    // The CLI prints these and scripts match on them.
    EXPECT_STREQ(serverStatusName(ServerStatus::Ok), "ok");
    EXPECT_STREQ(serverStatusName(ServerStatus::NotFound), "not-found");
    EXPECT_STREQ(serverStatusName(ServerStatus::Overloaded),
                 "overloaded");
    EXPECT_STREQ(serverStatusName(ServerStatus::QuotaExceeded),
                 "quota-exceeded");
    EXPECT_STREQ(serverStatusName(ServerStatus::ShuttingDown),
                 "shutting-down");
}

} // namespace
} // namespace dnastore::server
