/**
 * @file
 * Scheduler unit tests (src/server/scheduler.hh) against the gated
 * FakeBackend: get-coalescing, pool batching, typed admission
 * rejections, put/read exclusion and drain semantics — the properties
 * docs/SERVER.md promises.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/scheduler.hh"
#include "server/fake_backend.hh"

namespace dnastore::server
{
namespace
{

using testing::FakeBackend;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Collects one callback's outcome and lets the test wait for it. */
struct GetProbe
{
    std::atomic<bool> called{false};
    ServerStatus status = ServerStatus::Internal;
    std::vector<std::uint8_t> data;

    Scheduler::GetCallback
    callback()
    {
        return [this](const FetchResult &result) {
            status = result.status;
            data = result.data;
            called.store(true, std::memory_order_release);
        };
    }
};

TEST(Scheduler, DeliversGetPutLsStat)
{
    FakeBackend backend;
    backend.add("a", bytes("alpha"));

    SchedulerConfig config;
    config.num_threads = 2;
    Scheduler sched(backend, config);

    GetProbe get;
    ASSERT_EQ(sched.submitGet(1, "a", get.callback()), ServerStatus::Ok);

    std::atomic<bool> put_ok{false};
    ASSERT_EQ(sched.submitPut(1, "b", bytes("beta"),
                              [&](const StoreResult &r) {
                                  put_ok.store(r.ok());
                              }),
              ServerStatus::Ok);

    std::atomic<bool> ls_ok{false};
    ASSERT_EQ(sched.submitLs(1,
                             [&](const MetaResult &r) {
                                 ls_ok.store(r.ok());
                             }),
              ServerStatus::Ok);

    std::atomic<bool> stat_found{false};
    ASSERT_EQ(sched.submitStat(1, "a",
                               [&](const MetaResult &r) {
                                   stat_found.store(r.ok());
                               }),
              ServerStatus::Ok);

    sched.drainWait();
    EXPECT_TRUE(get.called.load());
    EXPECT_EQ(get.status, ServerStatus::Ok);
    EXPECT_EQ(get.data, bytes("alpha"));
    EXPECT_TRUE(put_ok.load());
    EXPECT_TRUE(ls_ok.load());
    EXPECT_TRUE(stat_found.load());
}

TEST(Scheduler, PropagatesNotFound)
{
    FakeBackend backend;
    SchedulerConfig config;
    config.num_threads = 1;
    Scheduler sched(backend, config);

    GetProbe get;
    ASSERT_EQ(sched.submitGet(1, "missing", get.callback()),
              ServerStatus::Ok);
    sched.drainWait();
    EXPECT_TRUE(get.called.load());
    EXPECT_EQ(get.status, ServerStatus::NotFound);
}

TEST(Scheduler, CoalescesConcurrentGetsIntoOneFetch)
{
    FakeBackend backend;
    backend.add("hot", bytes("popular"));
    backend.fetch_gate.close(); // Hold the fetch open.

    SchedulerConfig config;
    config.num_threads = 2;
    Scheduler sched(backend, config);

    // Four gets for the same object while no fetch can complete: one
    // group, one backend fetch, three coalesced riders.
    std::vector<GetProbe> probes(4);
    for (GetProbe &probe : probes)
        ASSERT_EQ(sched.submitGet(1, "hot", probe.callback()),
                  ServerStatus::Ok);

    backend.fetch_gate.open();
    sched.drainWait();

    for (GetProbe &probe : probes) {
        EXPECT_TRUE(probe.called.load());
        EXPECT_EQ(probe.status, ServerStatus::Ok);
        EXPECT_EQ(probe.data, bytes("popular"));
    }
    EXPECT_EQ(backend.fetches(), 1u);
    const SchedulerCounters counters = sched.counters();
    EXPECT_EQ(counters.requests, 4u);
    EXPECT_EQ(counters.coalesced_gets, 3u);
    EXPECT_EQ(counters.batches, 1u);
}

TEST(Scheduler, BatchesDistinctObjectsIntoOneBackendCall)
{
    FakeBackend backend;
    for (const char *name : {"a", "b", "c", "d", "e"})
        backend.add(name, bytes(name));
    backend.fetch_gate.close();

    SchedulerConfig config;
    config.num_threads = 2;
    config.batch_max = 4;
    config.max_concurrent_batches = 1; // Queue piles behind one slot.
    Scheduler sched(backend, config);

    // "a" dispatches alone and blocks at the gate; the other four queue
    // up and must leave as ONE fetchMany batch (batch_max = 4).
    std::vector<GetProbe> probes(5);
    const char *names[] = {"a", "b", "c", "d", "e"};
    for (std::size_t i = 0; i < 5; ++i)
        ASSERT_EQ(sched.submitGet(1, names[i], probes[i].callback()),
                  ServerStatus::Ok);

    backend.fetch_gate.open();
    sched.drainWait();

    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_TRUE(probes[i].called.load());
        EXPECT_EQ(probes[i].data, bytes(names[i]));
    }
    const std::vector<std::size_t> sizes = backend.batchSizes();
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], 1u);
    EXPECT_EQ(sizes[1], 4u);
    const SchedulerCounters counters = sched.counters();
    EXPECT_EQ(counters.batches, 2u);
    EXPECT_EQ(counters.batched_gets, 5u);
}

TEST(Scheduler, RejectsOverloadInlineWithoutCallback)
{
    FakeBackend backend;
    backend.add("a", bytes("a"));
    backend.add("b", bytes("b"));
    backend.fetch_gate.close();

    SchedulerConfig config;
    config.num_threads = 2;
    config.max_inflight = 2;
    config.batch_max = 1;
    Scheduler sched(backend, config);

    GetProbe first;
    GetProbe second;
    ASSERT_EQ(sched.submitGet(1, "a", first.callback()),
              ServerStatus::Ok);
    ASSERT_EQ(sched.submitGet(2, "b", second.callback()),
              ServerStatus::Ok);

    // Third request over the global limit: rejected NOW, typed, and the
    // callback must never fire.
    GetProbe rejected;
    EXPECT_EQ(sched.submitGet(3, "a", rejected.callback()),
              ServerStatus::Overloaded);

    backend.fetch_gate.open();
    sched.drainWait();
    EXPECT_TRUE(first.called.load());
    EXPECT_TRUE(second.called.load());
    EXPECT_FALSE(rejected.called.load());
    EXPECT_EQ(sched.counters().rejected_overload, 1u);
}

TEST(Scheduler, EnforcesPerClientQuota)
{
    FakeBackend backend;
    backend.add("a", bytes("a"));
    backend.fetch_gate.close();

    SchedulerConfig config;
    config.num_threads = 2;
    config.per_client_inflight = 1;
    Scheduler sched(backend, config);

    GetProbe first;
    ASSERT_EQ(sched.submitGet(7, "a", first.callback()),
              ServerStatus::Ok);

    // Same client beyond its quota: typed rejection.  Another client
    // is still welcome.
    GetProbe over;
    EXPECT_EQ(sched.submitGet(7, "a", over.callback()),
              ServerStatus::QuotaExceeded);
    GetProbe other;
    EXPECT_EQ(sched.submitGet(8, "a", other.callback()),
              ServerStatus::Ok);

    backend.fetch_gate.open();
    sched.drainWait();
    EXPECT_TRUE(first.called.load());
    EXPECT_FALSE(over.called.load());
    EXPECT_TRUE(other.called.load());
    EXPECT_EQ(sched.counters().rejected_quota, 1u);
}

TEST(Scheduler, DrainRejectsNewWorkAndFinishesAdmitted)
{
    FakeBackend backend;
    backend.add("a", bytes("a"));
    backend.fetch_gate.close();

    SchedulerConfig config;
    config.num_threads = 2;
    Scheduler sched(backend, config);

    GetProbe admitted;
    ASSERT_EQ(sched.submitGet(1, "a", admitted.callback()),
              ServerStatus::Ok);

    sched.beginDrain();
    GetProbe late;
    EXPECT_EQ(sched.submitGet(1, "a", late.callback()),
              ServerStatus::ShuttingDown);

    backend.fetch_gate.open();
    sched.drainWait();
    // Drain completed = every admitted callback was delivered.
    EXPECT_TRUE(admitted.called.load());
    EXPECT_FALSE(late.called.load());
    EXPECT_TRUE(sched.idle());
    EXPECT_EQ(sched.counters().rejected_draining, 1u);
}

TEST(Scheduler, PutExcludesReadsAndDoesNotStarve)
{
    FakeBackend backend;
    backend.add("a", bytes("a"));
    backend.add("b", bytes("b"));
    backend.fetch_gate.close();

    SchedulerConfig config;
    config.num_threads = 2;
    config.batch_max = 1;
    Scheduler sched(backend, config);

    // Read "a" is in flight; the put must wait for it, and read "b"
    // (submitted after the put) must wait for the put — writer priority
    // keeps a stream of reads from starving the put forever.
    GetProbe read_a;
    ASSERT_EQ(sched.submitGet(1, "a", read_a.callback()),
              ServerStatus::Ok);
    std::atomic<bool> put_done{false};
    ASSERT_EQ(sched.submitPut(1, "p", bytes("payload"),
                              [&](const StoreResult &r) {
                                  put_done.store(r.ok());
                              }),
              ServerStatus::Ok);
    GetProbe read_b;
    ASSERT_EQ(sched.submitGet(1, "b", read_b.callback()),
              ServerStatus::Ok);

    backend.fetch_gate.open();
    sched.drainWait();

    EXPECT_TRUE(read_a.called.load());
    EXPECT_TRUE(put_done.load());
    EXPECT_TRUE(read_b.called.load());
    const std::vector<std::string> ops = backend.ops();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0], "fetch:a");
    EXPECT_EQ(ops[1], "store:p");
    EXPECT_EQ(ops[2], "fetch:b");
}

TEST(Scheduler, DestructorDrainsOutstandingWork)
{
    FakeBackend backend;
    backend.add("a", bytes("a"));

    std::atomic<int> delivered{0};
    {
        SchedulerConfig config;
        config.num_threads = 2;
        Scheduler sched(backend, config);
        for (int i = 0; i < 8; ++i)
            ASSERT_EQ(sched.submitGet(1, "a",
                                      [&](const FetchResult &) {
                                          delivered.fetch_add(1);
                                      }),
                      ServerStatus::Ok);
        // No explicit drain: the destructor must deliver everything.
    }
    EXPECT_EQ(delivered.load(), 8);
}

} // namespace
} // namespace dnastore::server
