/**
 * @file
 * Tests for the DNASTORE_ASSERT / DNASTORE_DCHECK invariant layer: the
 * macros must fire (abort with a diagnostic) on a deliberately corrupted
 * invariant when dchecks are enabled, and compile out cleanly when not.
 */

#include <gtest/gtest.h>

#include "clustering/union_find.hh"
#include "util/assert.hh"

namespace dnastore
{
namespace
{

#if defined(DNASTORE_ENABLE_DCHECKS)

TEST(DchecksDeathTest, UnionFindOutOfRangeIndexFires)
{
    UnionFind uf(4);
    EXPECT_DEATH(uf.find(10), "DNASTORE_ASSERT");
}

TEST(DchecksDeathTest, FailureReportNamesConditionAndLocation)
{
    UnionFind uf(2);
    // The report must carry the failing condition text so a fuzz or CI
    // log is actionable without a debugger.
    EXPECT_DEATH(uf.find(99), "x < parent\\.size\\(\\)");
}

#else

TEST(Dchecks, CompiledOutIsANoOp)
{
    // With dchecks off the macro must evaluate to nothing; in
    // particular the condition expression must not even be evaluated.
    bool touched = false;
    DNASTORE_ASSERT((touched = true), "never evaluated when disabled");
    EXPECT_FALSE(touched);
}

#endif

TEST(Dchecks, PassingAssertIsSilent)
{
    UnionFind uf(4);
    DNASTORE_ASSERT(uf.count() == 4, "fresh union-find has all elements");
    EXPECT_EQ(uf.find(3), 3u);
}

} // namespace
} // namespace dnastore
