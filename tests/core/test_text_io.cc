/**
 * @file
 * Tests for the plain-text interchange formats used by the CLI.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/text_io.hh"

namespace dnastore
{
namespace
{

TEST(TextIo, StrandLinesRoundTrip)
{
    const std::vector<Strand> strands = {"ACGT", "GGCC", "A"};
    std::ostringstream out;
    writeStrandLines(out, strands);
    std::istringstream in(out.str());
    EXPECT_EQ(readStrandLines(in), strands);
}

TEST(TextIo, StrandLinesSkipBlanksAndCr)
{
    std::istringstream in("ACGT\r\n\nGG\n\n");
    const auto strands = readStrandLines(in);
    ASSERT_EQ(strands.size(), 2u);
    EXPECT_EQ(strands[0], "ACGT");
    EXPECT_EQ(strands[1], "GG");
}

TEST(TextIo, ClusterLinesRoundTrip)
{
    const std::vector<std::vector<Strand>> clusters = {
        {"ACGT", "ACGA"},
        {"TTTT"},
        {"GG", "GC", "GA"},
    };
    std::ostringstream out;
    writeClusterLines(out, clusters);
    std::istringstream in(out.str());
    EXPECT_EQ(readClusterLines(in), clusters);
}

TEST(TextIo, ClusterLinesToleratesTrailingBlanks)
{
    std::istringstream in("AC\nAG\n\n\nTT\n\n");
    const auto clusters = readClusterLines(in);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].size(), 2u);
    EXPECT_EQ(clusters[1].size(), 1u);
}

TEST(TextIo, EmptyInputs)
{
    std::istringstream in1(""), in2("");
    EXPECT_TRUE(readStrandLines(in1).empty());
    EXPECT_TRUE(readClusterLines(in2).empty());
}

TEST(TextIo, BinaryFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/text_io_bin.dat";
    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    writeBinaryFile(path, data);
    EXPECT_EQ(readBinaryFile(path), data);
}

TEST(TextIo, MissingFilesThrow)
{
    EXPECT_THROW(readStrandFile("/no/such/strands.txt"),
                 std::runtime_error);
    EXPECT_THROW(readClusterFile("/no/such/clusters.txt"),
                 std::runtime_error);
    EXPECT_THROW(readBinaryFile("/no/such/file.bin"), std::runtime_error);
}

TEST(TextIo, StrandFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/text_io_strands.txt";
    const std::vector<Strand> strands = {"ACGTAC", "GGTTAA"};
    writeStrandFile(path, strands);
    EXPECT_EQ(readStrandFile(path), strands);
}

TEST(TextIo, ClusterFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/text_io_clusters.txt";
    const std::vector<std::vector<Strand>> clusters = {{"AC"}, {"GT", "GA"}};
    writeClusterFile(path, clusters);
    EXPECT_EQ(readClusterFile(path), clusters);
}

} // namespace
} // namespace dnastore
