/**
 * @file
 * Tests for the end-to-end pipeline wiring: module combinations,
 * latency accounting, ground-truth metrics and failure handling.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

MatrixCodecConfig
testCodecConfig(LayoutScheme scheme = LayoutScheme::Baseline)
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 60; // 15 rows
    cfg.index_nt = 10;
    cfg.rs_n = 30;
    cfg.rs_k = 20;
    cfg.scheme = scheme;
    return cfg;
}

std::vector<std::uint8_t>
randomData(Rng &rng, std::size_t size)
{
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

TEST(Pipeline, MissingModulesReportedNotThrown)
{
    // The no-throw contract: a misconfigured pipeline reports its
    // problems through the error taxonomy instead of throwing.
    PipelineConfig cfg;
    Pipeline pipeline({}, cfg);

    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run({1, 2, 3}));
    EXPECT_FALSE(result.report.ok);
    EXPECT_EQ(result.status.encoding, StageStatus::Failed);
    ASSERT_GE(result.errors.size(), 5u);
    EXPECT_NE(result.errors.front().message.find("missing module"),
              std::string::npos);

    EXPECT_NO_THROW(result = pipeline.runFromReads({}, 70));
    EXPECT_FALSE(result.report.ok);
    EXPECT_EQ(result.status.clustering, StageStatus::Failed);
    EXPECT_FALSE(result.errors.empty());
}

TEST(Pipeline, StageStatusNamesAreStable)
{
    EXPECT_STREQ(stageStatusName(StageStatus::Skipped), "skipped");
    EXPECT_STREQ(stageStatusName(StageStatus::Ok), "ok");
    EXPECT_STREQ(stageStatusName(StageStatus::Degraded), "degraded");
    EXPECT_STREQ(stageStatusName(StageStatus::Failed), "failed");
}

/** A decoder that always throws, for stage-boundary catch tests. */
class ThrowingDecoder : public FileDecoder
{
  public:
    DecodeReport
    decode(const std::vector<Strand> &, std::size_t) const override
    {
        throw std::runtime_error("decoder exploded");
    }
    std::string name() const override { return "throwing"; }
};

/** A reconstructor that throws on clusters of a given size. */
class FlakyReconstructor : public Reconstructor
{
  public:
    explicit FlakyReconstructor(std::size_t threshold)
        : fail_below(threshold)
    {
    }

    Strand
    reconstruct(const std::vector<Strand> &reads,
                std::size_t expected_length) const override
    {
        if (reads.size() < fail_below)
            throw std::runtime_error("cluster too thin");
        return inner.reconstruct(reads, expected_length);
    }
    std::string name() const override { return "flaky"; }

  private:
    std::size_t fail_below;
    NwConsensusReconstructor inner;
};

TEST(Pipeline, ModuleExceptionsAreCaughtAtStageBoundaries)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    ThrowingDecoder decoder;
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(11);
    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(randomData(rng, 2000)));
    EXPECT_FALSE(result.report.ok);
    EXPECT_EQ(result.status.decoding, StageStatus::Failed);
    // Everything upstream of the broken stage still ran.
    EXPECT_EQ(result.status.encoding, StageStatus::Ok);
    EXPECT_EQ(result.status.clustering, StageStatus::Ok);
    ASSERT_FALSE(result.errors.empty());
    EXPECT_EQ(result.errors.front().stage, "decoding");
    EXPECT_NE(result.errors.front().message.find("decoder exploded"),
              std::string::npos);
}

TEST(Pipeline, FlakyReconstructorDegradesInsteadOfAborting)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    FlakyReconstructor recon(2); // throws on singleton clusters
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(10.0, CoverageDistribution::Poisson);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(12);
    const auto data = randomData(rng, 3000);
    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(data));
    // Singleton clusters failed individually; the rest decoded fine.
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

TEST(Pipeline, RecoveryPolicyRetriesWithRelaxedClusterFilter)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    // Low coverage + aggressive filter: most clusters get discarded and
    // the first decode fails.
    cfg.coverage = CoverageModel(4.0, CoverageDistribution::Poisson);
    cfg.min_cluster_size = 4;
    cfg.max_decode_retries = 2;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(13);
    const auto data = randomData(rng, 3000);
    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(data));
    if (result.recovered) {
        EXPECT_TRUE(result.report.ok);
        EXPECT_EQ(result.report.data, data);
        EXPECT_FALSE(result.recovery_attempts.empty());
        EXPECT_EQ(result.status.decoding, StageStatus::Degraded);
    }
    // Whether or not recovery kicked in (the first decode may already
    // succeed on another platform), the attempt log must be bounded.
    EXPECT_LE(result.recovery_attempts.size(), cfg.max_decode_retries);
}

TEST(Pipeline, DroppedClustersAreCounted)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(8.0, CoverageDistribution::Poisson);
    cfg.min_cluster_size = 6; // guaranteed to shed some clusters
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(14);
    const auto result = pipeline.run(randomData(rng, 3000));
    EXPECT_GT(result.dropped_clusters, 0u);
    EXPECT_EQ(result.status.clustering, StageStatus::Degraded);
}

struct Combo
{
    LayoutScheme scheme;
    SignatureKind signature;
    int reconstructor; // 0 = BMA, 1 = DBMA, 2 = NW
};

class PipelineComboTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(PipelineComboTest, RoundTripsAFile)
{
    const Combo combo = GetParam();
    const auto codec_cfg = testCodecConfig(combo.scheme);
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));

    RashtchianClustererConfig clu_cfg;
    clu_cfg.signature = combo.signature;
    RashtchianClusterer clusterer(clu_cfg);

    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    NwConsensusReconstructor nw;
    const Reconstructor *recon = combo.reconstructor == 0
        ? static_cast<const Reconstructor *>(&bma)
        : combo.reconstructor == 1
            ? static_cast<const Reconstructor *>(&dbma)
            : static_cast<const Reconstructor *>(&nw);

    PipelineConfig cfg;
    cfg.coverage = CoverageModel(10.0, CoverageDistribution::Poisson);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, recon},
                      cfg);

    Rng rng(77);
    const auto data = randomData(rng, 4000);
    const auto result = pipeline.run(data);
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
    EXPECT_GT(result.encoded_strands, 0u);
    EXPECT_GT(result.reads, result.encoded_strands);
    EXPECT_GT(result.clustering_accuracy, 0.7);
    EXPECT_GT(result.perfect_reconstructions, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipelineComboTest,
    ::testing::Values(
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 0},
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 1},
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 2},
        Combo{LayoutScheme::Baseline, SignatureKind::WGram, 1},
        Combo{LayoutScheme::Gini, SignatureKind::QGram, 1},
        Combo{LayoutScheme::Gini, SignatureKind::WGram, 2},
        Combo{LayoutScheme::DNAMapper, SignatureKind::QGram, 1}));

TEST(Pipeline, LatencyCoversAllStages)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(5);
    const auto result = pipeline.run(randomData(rng, 2000));
    EXPECT_GT(result.latency.total(), 0.0);
    EXPECT_GE(result.latency.encoding, 0.0);
    EXPECT_GE(result.latency.clustering, 0.0);
    EXPECT_GE(result.latency.reconstruction, 0.0);
    EXPECT_GE(result.latency.decoding, 0.0);
}

TEST(Pipeline, ExtremeDropoutFailsGracefully)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(2.0, CoverageDistribution::Fixed, 0.7);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(6);
    const auto data = randomData(rng, 4000);
    const auto result = pipeline.run(data);
    // 70% molecule dropout is far beyond the erasure budget.
    EXPECT_FALSE(result.report.ok);
    EXPECT_GT(result.dropped_strands, 0u);
    EXPECT_GT(result.report.failed_rows, 0u);
}

TEST(Pipeline, MinClusterSizeFiltersJunk)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(10.0);
    cfg.min_cluster_size = 2;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(7);
    const auto data = randomData(rng, 3000);
    const auto result = pipeline.run(data);
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

TEST(Pipeline, RunFromReadsDecodesPreparedReads)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.04));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;

    Rng rng(8);
    const auto data = randomData(rng, 3000);
    const auto strands = encoder.encode(data);
    // Simulate sequencing outside the pipeline (e.g. real FASTQ data).
    std::vector<Strand> reads;
    for (const auto &s : strands)
        for (int c = 0; c < 8; ++c)
            reads.push_back(channel.transmit(s, rng));

    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto result = pipeline.runFromReads(
        reads, codec_cfg.strandLength(),
        encoder.unitsForSize(data.size()));
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

} // namespace
} // namespace dnastore
