/**
 * @file
 * Tests for the end-to-end pipeline wiring: module combinations,
 * latency accounting, ground-truth metrics and failure handling.
 */

#include <gtest/gtest.h>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

MatrixCodecConfig
testCodecConfig(LayoutScheme scheme = LayoutScheme::Baseline)
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 60; // 15 rows
    cfg.index_nt = 10;
    cfg.rs_n = 30;
    cfg.rs_k = 20;
    cfg.scheme = scheme;
    return cfg;
}

std::vector<std::uint8_t>
randomData(Rng &rng, std::size_t size)
{
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

TEST(Pipeline, MissingModulesThrow)
{
    PipelineConfig cfg;
    Pipeline pipeline({}, cfg);
    EXPECT_THROW(pipeline.run({1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(pipeline.runFromReads({}, 70), std::invalid_argument);
}

struct Combo
{
    LayoutScheme scheme;
    SignatureKind signature;
    int reconstructor; // 0 = BMA, 1 = DBMA, 2 = NW
};

class PipelineComboTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(PipelineComboTest, RoundTripsAFile)
{
    const Combo combo = GetParam();
    const auto codec_cfg = testCodecConfig(combo.scheme);
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));

    RashtchianClustererConfig clu_cfg;
    clu_cfg.signature = combo.signature;
    RashtchianClusterer clusterer(clu_cfg);

    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    NwConsensusReconstructor nw;
    const Reconstructor *recon = combo.reconstructor == 0
        ? static_cast<const Reconstructor *>(&bma)
        : combo.reconstructor == 1
            ? static_cast<const Reconstructor *>(&dbma)
            : static_cast<const Reconstructor *>(&nw);

    PipelineConfig cfg;
    cfg.coverage = CoverageModel(10.0, CoverageDistribution::Poisson);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, recon},
                      cfg);

    Rng rng(77);
    const auto data = randomData(rng, 4000);
    const auto result = pipeline.run(data);
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
    EXPECT_GT(result.encoded_strands, 0u);
    EXPECT_GT(result.reads, result.encoded_strands);
    EXPECT_GT(result.clustering_accuracy, 0.7);
    EXPECT_GT(result.perfect_reconstructions, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipelineComboTest,
    ::testing::Values(
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 0},
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 1},
        Combo{LayoutScheme::Baseline, SignatureKind::QGram, 2},
        Combo{LayoutScheme::Baseline, SignatureKind::WGram, 1},
        Combo{LayoutScheme::Gini, SignatureKind::QGram, 1},
        Combo{LayoutScheme::Gini, SignatureKind::WGram, 2},
        Combo{LayoutScheme::DNAMapper, SignatureKind::QGram, 1}));

TEST(Pipeline, LatencyCoversAllStages)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(5);
    const auto result = pipeline.run(randomData(rng, 2000));
    EXPECT_GT(result.latency.total(), 0.0);
    EXPECT_GE(result.latency.encoding, 0.0);
    EXPECT_GE(result.latency.clustering, 0.0);
    EXPECT_GE(result.latency.reconstruction, 0.0);
    EXPECT_GE(result.latency.decoding, 0.0);
}

TEST(Pipeline, ExtremeDropoutFailsGracefully)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(2.0, CoverageDistribution::Fixed, 0.7);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(6);
    const auto data = randomData(rng, 4000);
    const auto result = pipeline.run(data);
    // 70% molecule dropout is far beyond the erasure budget.
    EXPECT_FALSE(result.report.ok);
    EXPECT_GT(result.dropped_strands, 0u);
    EXPECT_GT(result.report.failed_rows, 0u);
}

TEST(Pipeline, MinClusterSizeFiltersJunk)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));
    RashtchianClusterer clusterer({});
    DoubleSidedBmaReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(10.0);
    cfg.min_cluster_size = 2;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    Rng rng(7);
    const auto data = randomData(rng, 3000);
    const auto result = pipeline.run(data);
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

TEST(Pipeline, RunFromReadsDecodesPreparedReads)
{
    const auto codec_cfg = testCodecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.04));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;

    Rng rng(8);
    const auto data = randomData(rng, 3000);
    const auto strands = encoder.encode(data);
    // Simulate sequencing outside the pipeline (e.g. real FASTQ data).
    std::vector<Strand> reads;
    for (const auto &s : strands)
        for (int c = 0; c < 8; ++c)
            reads.push_back(channel.transmit(s, rng));

    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto result = pipeline.runFromReads(
        reads, codec_cfg.strandLength(),
        encoder.unitsForSize(data.size()));
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

} // namespace
} // namespace dnastore
