/**
 * @file
 * Tests for the fault-injection subsystem: determinism, per-fault-type
 * counters, and ground-truth alignment under destructive faults.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/fault.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

std::vector<Strand>
makeReads(Rng &rng, std::size_t count, std::size_t length)
{
    std::vector<Strand> reads;
    reads.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        reads.push_back(strand::random(rng, length));
    return reads;
}

TEST(FaultInjector, DefaultPlanInjectsNothing)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.anyReadFaults());
    EXPECT_FALSE(plan.anyClusterFaults());

    FaultInjector injector(plan);
    Rng rng(1);
    auto strands = makeReads(rng, 50, 100);
    const auto before = strands;
    injector.injectStrands(strands);
    injector.injectReads(strands);
    EXPECT_EQ(strands, before);
    EXPECT_EQ(injector.counters().total(), 0u);
}

TEST(FaultInjector, StrandDropoutRemovesAndCounts)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.strand_dropout = 0.2;
    FaultInjector injector(plan);
    Rng rng(2);
    auto strands = makeReads(rng, 500, 80);
    injector.injectStrands(strands);
    const auto &counters = injector.counters();
    EXPECT_EQ(strands.size() + counters.dropped_strands, 500u);
    EXPECT_GT(counters.dropped_strands, 50u);
    EXPECT_LT(counters.dropped_strands, 180u);
}

TEST(FaultInjector, SameSeedSameFaults)
{
    FaultPlan plan;
    plan.seed = 1234;
    plan.read_truncation = 0.1;
    plan.read_elongation = 0.1;
    plan.index_corruption = 0.05;
    plan.garbage_read = 0.05;
    plan.duplicate_conflict = 0.05;

    Rng rng(3);
    const auto reads = makeReads(rng, 300, 120);

    auto a = reads;
    auto b = reads;
    FaultInjector first(plan);
    FaultInjector second(plan);
    first.injectReads(a);
    second.injectReads(b);
    EXPECT_EQ(a, b);

    // reset() replays the identical fault pattern.
    auto c = reads;
    first.reset();
    first.injectReads(c);
    EXPECT_EQ(a, c);
}

TEST(FaultInjector, ReadFaultCountersMatchObservedDamage)
{
    FaultPlan plan;
    plan.seed = 777;
    plan.index_nt = 12;
    plan.read_truncation = 0.1;
    plan.garbage_read = 0.08;
    plan.duplicate_conflict = 0.06;
    FaultInjector injector(plan);

    Rng rng(4);
    const std::size_t n = 1000;
    auto reads = makeReads(rng, n, 120);
    std::vector<std::uint32_t> origins(n);
    std::iota(origins.begin(), origins.end(), 0);

    injector.injectReads(reads, &origins);
    const auto &counters = injector.counters();

    // Origins stay aligned even when reads are appended.
    ASSERT_EQ(reads.size(), origins.size());
    EXPECT_EQ(reads.size(), n + counters.duplicate_conflicts);
    EXPECT_GT(counters.truncated_reads, 0u);
    EXPECT_GT(counters.garbage_reads, 0u);
    EXPECT_GT(counters.duplicate_conflicts, 0u);

    std::size_t short_reads = 0;
    std::size_t invalid_reads = 0;
    for (const auto &read : reads) {
        if (read.size() < 120)
            ++short_reads;
        if (!strand::isValid(read))
            ++invalid_reads;
    }
    // Every truncation produced a short read; garbage may be any length.
    EXPECT_GE(short_reads, counters.truncated_reads);
    EXPECT_LE(invalid_reads, counters.garbage_reads);
    EXPECT_GT(invalid_reads, 0u);
}

TEST(FaultInjector, IndexCorruptionKeepsLengthAndAlphabet)
{
    FaultPlan plan;
    plan.seed = 31;
    plan.index_nt = 10;
    plan.index_corruption = 1.0; // corrupt every index deterministically
    FaultInjector injector(plan);

    Rng rng(5);
    auto reads = makeReads(rng, 20, 60);
    const auto before = reads;
    injector.injectReads(reads);

    ASSERT_EQ(reads.size(), before.size());
    EXPECT_EQ(injector.counters().corrupted_indices, 20u);
    for (std::size_t i = 0; i < reads.size(); ++i) {
        EXPECT_EQ(reads[i].size(), before[i].size());
        EXPECT_TRUE(strand::isValid(reads[i]));
        // Payload beyond the index field is untouched.
        EXPECT_EQ(reads[i].substr(10), before[i].substr(10));
    }
}

TEST(FaultInjector, DuplicateConflictCopiesIndexField)
{
    FaultPlan plan;
    plan.seed = 47;
    plan.index_nt = 8;
    plan.duplicate_conflict = 1.0;
    FaultInjector injector(plan);

    Rng rng(6);
    auto reads = makeReads(rng, 10, 40);
    injector.injectReads(reads);
    ASSERT_EQ(reads.size(), 20u);
    for (std::size_t i = 0; i < 10; ++i) {
        // The clone claims the same address with a different payload.
        EXPECT_EQ(reads[10 + i].substr(0, 8), reads[i].substr(0, 8));
        EXPECT_EQ(reads[10 + i].size(), reads[i].size());
        EXPECT_NE(reads[10 + i], reads[i]);
    }
}

TEST(FaultInjector, ClusterFaultsEmptyAndMergeInPlace)
{
    FaultPlan plan;
    plan.seed = 52;
    plan.cluster_drop = 0.3;
    plan.cluster_merge = 0.3;
    FaultInjector injector(plan);

    Rng rng(7);
    std::vector<std::vector<Strand>> groups(40);
    std::vector<std::vector<std::uint32_t>> origins(40);
    std::size_t total_reads = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const std::size_t size = 1 + rng.below(6);
        groups[g] = makeReads(rng, size, 30);
        origins[g].assign(size, static_cast<std::uint32_t>(g));
        total_reads += size;
    }

    injector.injectClusters(groups, &origins);
    const auto &counters = injector.counters();
    EXPECT_GT(counters.emptied_clusters, 0u);
    EXPECT_GT(counters.merged_clusters, 0u);

    // Group list keeps its shape (emptied, not erased) and origins stay
    // aligned per group; merged reads moved, dropped reads vanished.
    ASSERT_EQ(groups.size(), 40u);
    std::size_t remaining = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        EXPECT_EQ(groups[g].size(), origins[g].size());
        remaining += groups[g].size();
    }
    EXPECT_LT(remaining, total_reads);
}

} // namespace
} // namespace dnastore
