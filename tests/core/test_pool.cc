/**
 * @file
 * Tests for the DNA pool key-value store and PCR amplification.
 */

#include <gtest/gtest.h>

#include "core/pool.hh"

namespace dnastore
{
namespace
{

struct Fixture
{
    Fixture()
        : rng(21), lib(PrimerLibrary::design(rng, 6))
    {
    }

    Rng rng;
    PrimerLibrary lib;
};

TEST(DnaPool, StoreAttachesPrimers)
{
    Fixture f;
    const auto pair = f.lib.pairFor(0);
    DnaPool pool;
    const Strand payload = strand::random(f.rng, 50);
    pool.store(pair, {payload});
    ASSERT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.all()[0], pair.forward + payload + pair.reverse);
}

TEST(DnaPool, AmplifySelectsOnlyTargetFile)
{
    Fixture f;
    DnaPool pool;
    std::vector<Strand> file_a, file_b;
    for (int i = 0; i < 30; ++i) {
        file_a.push_back(strand::random(f.rng, 40));
        file_b.push_back(strand::random(f.rng, 40));
    }
    pool.store(f.lib.pairFor(0), file_a);
    pool.store(f.lib.pairFor(1), file_b);
    EXPECT_EQ(pool.size(), 60u);

    const auto product = amplify(pool, f.lib.pairFor(0), f.rng);
    EXPECT_EQ(product.on_target, 30u);
    EXPECT_EQ(product.off_target, 0u);
    ASSERT_EQ(product.molecules.size(), 30u);
    const auto pair = f.lib.pairFor(0);
    for (const auto &mol : product.molecules) {
        EXPECT_EQ(mol.substr(0, pair.forward.size()), pair.forward);
    }
}

TEST(DnaPool, OffTargetLeakage)
{
    Fixture f;
    DnaPool pool;
    std::vector<Strand> file_a(50, strand::random(f.rng, 40));
    std::vector<Strand> file_b(5000, strand::random(f.rng, 40));
    pool.store(f.lib.pairFor(0), file_a);
    pool.store(f.lib.pairFor(1), file_b);

    PcrConfig cfg;
    cfg.off_target_rate = 0.01;
    const auto product = amplify(pool, f.lib.pairFor(0), f.rng, cfg);
    EXPECT_EQ(product.on_target, 50u);
    EXPECT_NEAR(static_cast<double>(product.off_target), 50.0, 30.0);
}

TEST(DnaPool, AmplifyUnknownKeyIsEmpty)
{
    Fixture f;
    DnaPool pool;
    pool.store(f.lib.pairFor(0), {strand::random(f.rng, 40)});
    const auto product = amplify(pool, f.lib.pairFor(2), f.rng);
    EXPECT_TRUE(product.molecules.empty());
}

} // namespace
} // namespace dnastore
