/**
 * @file
 * Full-system integration tests: multiple files in one pool, PCR random
 * access, wetlab-style FASTQ handling, and the complete storage round
 * trip under realistic noise.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "core/pool.hh"
#include "dna/fastx.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "simulator/virtual_wetlab.hh"
#include "wetlab/preprocess.hh"

namespace dnastore
{
namespace
{

MatrixCodecConfig
codecConfig()
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 80; // 20 rows
    cfg.index_nt = 10;
    cfg.rs_n = 40;
    cfg.rs_k = 28;
    return cfg;
}

std::vector<std::uint8_t>
randomData(Rng &rng, std::size_t size)
{
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

/**
 * Store two files in one pool, PCR-amplify one of them, sequence it
 * through a noisy channel in both orientations, preprocess, and run the
 * retrieval half of the pipeline.
 */
TEST(EndToEnd, RandomAccessRetrievalFromSharedPool)
{
    Rng rng(101);
    const auto codec_cfg = codecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);

    const auto lib = PrimerLibrary::design(rng, 4);
    const auto key_a = lib.pairFor(0);
    const auto key_b = lib.pairFor(1);

    const auto file_a = randomData(rng, 3000);
    const auto file_b = randomData(rng, 2000);

    DnaPool pool;
    pool.store(key_a, encoder.encode(file_a));
    pool.store(key_b, encoder.encode(file_b));

    // Random access: amplify file A only.
    const auto product = amplify(pool, key_a, rng);
    ASSERT_EQ(product.on_target,
              encoder.unitsForSize(file_a.size()) * codec_cfg.rs_n);

    // Sequence with noise; half the reads come out reverse-oriented.
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.04));
    CoverageModel coverage(12.0, CoverageDistribution::Poisson);
    auto run = simulateSequencing(product.molecules, channel, coverage, rng);
    for (std::size_t i = 0; i < run.reads.size(); i += 2)
        run.reads[i] = strand::reverseComplement(run.reads[i]);

    // Wetlab preprocessing: orientation + primer trimming.
    WetlabPreprocessConfig pre_cfg;
    pre_cfg.primer_max_edit = 5;
    const auto pre = preprocessReads(run.reads, key_a, pre_cfg);
    EXPECT_GT(pre.reads.size(), run.reads.size() * 9 / 10);
    EXPECT_GT(pre.flipped, 0u);

    // Retrieval half of the pipeline.
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto result = pipeline.runFromReads(
        pre.reads, codec_cfg.strandLength(),
        encoder.unitsForSize(file_a.size()));
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, file_a);
}

TEST(EndToEnd, FastqInterchangeRoundTrip)
{
    Rng rng(102);
    const auto codec_cfg = codecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    const auto lib = PrimerLibrary::design(rng, 2);
    const auto key = lib.pairFor(0);

    const auto data = randomData(rng, 1500);
    DnaPool pool;
    pool.store(key, encoder.encode(data));

    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    CoverageModel coverage(10.0);
    const auto run = simulateSequencing(pool.all(), channel, coverage, rng);

    // Serialise through FASTQ text (as a sequencer hands data over).
    std::stringstream fastq_stream;
    writeFastq(fastq_stream, readsToFastq(run.reads, "nanopore"));
    const auto records = readFastq(fastq_stream);
    ASSERT_EQ(records.size(), run.reads.size());

    const auto pre = preprocessFastq(records, key, {5});
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto result = pipeline.runFromReads(
        pre.reads, codec_cfg.strandLength(),
        encoder.unitsForSize(data.size()));
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

TEST(EndToEnd, SurvivesVirtualWetlabAtHighCoverage)
{
    // The hidden reference channel is much nastier than the iid model;
    // with enough coverage and the NW reconstructor the system must
    // still recover the file.
    Rng rng(103);
    MatrixCodecConfig codec_cfg = codecConfig();
    codec_cfg.rs_k = 24; // more parity for the nastier channel
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    VirtualWetlabConfig channel_cfg;
    channel_cfg.base_error_rate = 0.04;
    VirtualWetlabChannel channel(channel_cfg);
    RashtchianClustererConfig clu_cfg;
    clu_cfg.edit_threshold = 35;
    RashtchianClusterer clusterer(clu_cfg);
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    cfg.coverage = CoverageModel(20.0, CoverageDistribution::LogNormalSkew);
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto data = randomData(rng, 2500);
    const auto result = pipeline.run(data);
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, data);
}

TEST(EndToEnd, ContaminatedPcrStillDecodes)
{
    // Off-target molecules leak into the amplified product; their
    // indices belong to the same index space, but clustering keeps them
    // in separate clusters and RS absorbs the stray columns.
    Rng rng(104);
    const auto codec_cfg = codecConfig();
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    const auto lib = PrimerLibrary::design(rng, 4);

    const auto file_a = randomData(rng, 2000);
    const auto file_b = randomData(rng, 2000);
    DnaPool pool;
    pool.store(lib.pairFor(0), encoder.encode(file_a));
    pool.store(lib.pairFor(1), encoder.encode(file_b));

    PcrConfig pcr;
    pcr.off_target_rate = 0.02;
    const auto product = amplify(pool, lib.pairFor(0), rng, pcr);

    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    CoverageModel coverage(10.0);
    const auto run = simulateSequencing(product.molecules, channel,
                                        coverage, rng);
    const auto pre = preprocessReads(run.reads, lib.pairFor(0), {4});

    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    PipelineConfig cfg;
    Pipeline pipeline({&encoder, &decoder, &channel, &clusterer, &recon},
                      cfg);
    const auto result = pipeline.runFromReads(
        pre.reads, codec_cfg.strandLength(),
        encoder.unitsForSize(file_a.size()));
    EXPECT_TRUE(result.report.ok);
    EXPECT_EQ(result.report.data, file_a);
}

} // namespace
} // namespace dnastore
