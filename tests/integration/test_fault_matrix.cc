/**
 * @file
 * Fault-matrix integration tests: every FaultPlan knob alone at a
 * moderate rate must leave the pipeline both alive (no exception
 * escapes run()) and correct (report.ok, bit-exact data), and the
 * combined acceptance scenario from the robustness issue must recover
 * the input at default RS parity.
 */

#include <gtest/gtest.h>

#include "codec/matrix_codec.hh"
#include "core/fault.hh"
#include "core/pipeline.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"

namespace dnastore
{
namespace
{

MatrixCodecConfig
codecConfig()
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 80; // 20 rows
    cfg.index_nt = 10;
    cfg.rs_n = 40;
    cfg.rs_k = 28; // default parity: 12 erasure columns of 40
    return cfg;
}

std::vector<std::uint8_t>
randomData(Rng &rng, std::size_t size)
{
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

/** Run the full pipeline with the given fault plan; never throws. */
PipelineResult
runWithFaults(FaultPlan plan, std::uint64_t data_seed = 42)
{
    const auto codec_cfg = codecConfig();
    plan.index_nt = codec_cfg.index_nt;

    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.02));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    FaultInjector injector(plan);

    PipelineModules mods;
    mods.encoder = &encoder;
    mods.decoder = &decoder;
    mods.channel = &channel;
    mods.clusterer = &clusterer;
    mods.reconstructor = &recon;
    mods.fault_injector = &injector;

    PipelineConfig cfg;
    cfg.coverage = CoverageModel(12.0);
    // Junk products of truncation/duplication drift into singleton
    // clusters; the standard min-size filter screens them out.
    cfg.min_cluster_size = 2;
    Pipeline pipeline(mods, cfg);

    Rng rng(data_seed);
    const auto data = randomData(rng, 2000);
    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(data));
    if (result.report.ok) {
        EXPECT_EQ(result.report.data, data);
    }
    return result;
}

TEST(FaultMatrix, StrandDropoutAlone)
{
    FaultPlan plan;
    plan.strand_dropout = 0.10;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.dropped_strands, 0u);
    EXPECT_EQ(result.status.encoding, StageStatus::Degraded);
}

TEST(FaultMatrix, ReadTruncationAlone)
{
    FaultPlan plan;
    plan.read_truncation = 0.05;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.truncated_reads, 0u);
}

TEST(FaultMatrix, ReadElongationAlone)
{
    FaultPlan plan;
    plan.read_elongation = 0.05;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.elongated_reads, 0u);
}

TEST(FaultMatrix, IndexCorruptionAlone)
{
    FaultPlan plan;
    plan.index_corruption = 0.02;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.corrupted_indices, 0u);
}

TEST(FaultMatrix, DuplicateConflictAlone)
{
    FaultPlan plan;
    plan.duplicate_conflict = 0.03;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.duplicate_conflicts, 0u);
}

TEST(FaultMatrix, GarbageReadsAlone)
{
    FaultPlan plan;
    plan.garbage_read = 0.05;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.garbage_reads, 0u);
    // Garbage that is non-ACGT is filtered before clustering.
    EXPECT_GT(result.malformed_reads, 0u);
}

TEST(FaultMatrix, ClusterDropAlone)
{
    FaultPlan plan;
    plan.cluster_drop = 0.05;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.emptied_clusters, 0u);
}

TEST(FaultMatrix, ClusterMergeAlone)
{
    FaultPlan plan;
    plan.cluster_merge = 0.03;
    const auto result = runWithFaults(plan);
    EXPECT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.merged_clusters, 0u);
}

TEST(FaultMatrix, AcceptanceScenarioCombinedFaults)
{
    // The issue's acceptance bar: 10% strand dropout + 2% read
    // truncation + 1% index corruption, seeded, baseline codec at
    // default RS parity -> bit-exact recovery.
    FaultPlan plan;
    plan.strand_dropout = 0.10;
    plan.read_truncation = 0.02;
    plan.index_corruption = 0.01;
    const auto result = runWithFaults(plan);
    ASSERT_TRUE(result.report.ok);
    EXPECT_GT(result.faults.dropped_strands, 0u);
    EXPECT_GT(result.faults.truncated_reads, 0u);
    EXPECT_GT(result.faults.corrupted_indices, 0u);
    EXPECT_FALSE(result.status.anyFailed());
}

TEST(FaultMatrix, SameSeedGivesIdenticalOutcome)
{
    FaultPlan plan;
    plan.strand_dropout = 0.10;
    plan.read_truncation = 0.02;
    const auto a = runWithFaults(plan);
    const auto b = runWithFaults(plan);
    EXPECT_EQ(a.report.ok, b.report.ok);
    EXPECT_EQ(a.faults.dropped_strands, b.faults.dropped_strands);
    EXPECT_EQ(a.faults.truncated_reads, b.faults.truncated_reads);
    EXPECT_EQ(a.reads, b.reads);
}

TEST(FaultMatrix, EverythingAtOnceNeverThrows)
{
    // All knobs on at punishing rates: correctness is not required, but
    // the no-throw contract and a coherent result are.
    FaultPlan plan;
    plan.strand_dropout = 0.3;
    plan.read_truncation = 0.2;
    plan.read_elongation = 0.2;
    plan.index_corruption = 0.2;
    plan.duplicate_conflict = 0.2;
    plan.garbage_read = 0.2;
    plan.cluster_drop = 0.2;
    plan.cluster_merge = 0.2;

    const auto codec_cfg = codecConfig();
    plan.index_nt = codec_cfg.index_nt;
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.02));
    RashtchianClusterer clusterer({});
    NwConsensusReconstructor recon;
    NwConsensusReconstructor fallback;
    FaultInjector injector(plan);

    PipelineModules mods;
    mods.encoder = &encoder;
    mods.decoder = &decoder;
    mods.channel = &channel;
    mods.clusterer = &clusterer;
    mods.reconstructor = &recon;
    mods.fault_injector = &injector;
    mods.fallback_reconstructor = &fallback;

    PipelineConfig cfg;
    cfg.coverage = CoverageModel(8.0);
    cfg.max_decode_retries = 2;
    Pipeline pipeline(mods, cfg);

    Rng rng(7);
    const auto data = randomData(rng, 1000);
    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(data));
    EXPECT_GT(result.faults.total(), 0u);
    // Whatever happened, the taxonomy must be internally consistent.
    if (!result.report.ok) {
        EXPECT_NE(result.status.decoding, StageStatus::Ok);
    }
}

} // namespace
} // namespace dnastore
