/**
 * @file
 * Tests for the Reed-Solomon codec: systematic encoding, errors-and-
 * erasures decoding up to capacity, and failure reporting beyond it.
 */

#include <gtest/gtest.h>

#include "ecc/reed_solomon.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

std::vector<std::uint8_t>
randomMessage(Rng &rng, std::size_t k)
{
    std::vector<std::uint8_t> msg(k);
    for (auto &b : msg)
        b = static_cast<std::uint8_t>(rng.below(256));
    return msg;
}

TEST(ReedSolomon, RejectsBadParameters)
{
    EXPECT_THROW(ReedSolomon(0, 0), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(256, 10), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(10, 10), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(10, 0), std::invalid_argument);
    EXPECT_NO_THROW(ReedSolomon(255, 223));
}

TEST(ReedSolomon, EncodeIsSystematic)
{
    Rng rng(1);
    ReedSolomon rs(60, 40);
    const auto msg = randomMessage(rng, 40);
    const auto cw = rs.encode(msg);
    ASSERT_EQ(cw.size(), 60u);
    for (std::size_t i = 0; i < 40; ++i)
        EXPECT_EQ(cw[i], msg[i]);
    EXPECT_TRUE(rs.isCodeword(cw));
    EXPECT_EQ(rs.message(cw), msg);
}

TEST(ReedSolomon, EncodeWrongSizeThrows)
{
    ReedSolomon rs(20, 10);
    EXPECT_THROW(rs.encode(std::vector<std::uint8_t>(9)),
                 std::invalid_argument);
}

TEST(ReedSolomon, CleanCodewordDecodesTrivially)
{
    Rng rng(2);
    ReedSolomon rs(40, 20);
    auto cw = rs.encode(randomMessage(rng, 20));
    const auto original = cw;
    const auto result = rs.decode(cw);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(cw, original);
}

struct RsParams
{
    std::size_t n;
    std::size_t k;
};

class RsRoundTripTest : public ::testing::TestWithParam<RsParams>
{
};

TEST_P(RsRoundTripTest, CorrectsUpToCapacityErrors)
{
    const auto [n, k] = GetParam();
    ReedSolomon rs(n, k);
    Rng rng(n * 1000 + k);
    const std::size_t t = rs.correctionCapacity();
    for (int trial = 0; trial < 30; ++trial) {
        const auto msg = randomMessage(rng, k);
        const auto clean = rs.encode(msg);
        auto corrupted = clean;
        const std::size_t num_errors = rng.below(t + 1);
        const auto positions = rng.sampleIndices(n, num_errors);
        for (const std::size_t pos : positions)
            corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const auto result = rs.decode(corrupted);
        ASSERT_TRUE(result.ok) << "n=" << n << " k=" << k
                               << " errors=" << num_errors;
        EXPECT_EQ(corrupted, clean);
        EXPECT_EQ(result.errors, num_errors);
    }
}

TEST_P(RsRoundTripTest, CorrectsFullErasureBudget)
{
    const auto [n, k] = GetParam();
    ReedSolomon rs(n, k);
    Rng rng(n * 77 + k);
    for (int trial = 0; trial < 20; ++trial) {
        const auto msg = randomMessage(rng, k);
        const auto clean = rs.encode(msg);
        auto corrupted = clean;
        const auto erasures = rng.sampleIndices(n, n - k);
        for (const std::size_t pos : erasures)
            corrupted[pos] = static_cast<std::uint8_t>(rng.below(256));
        const auto result = rs.decode(corrupted, erasures);
        ASSERT_TRUE(result.ok);
        EXPECT_EQ(corrupted, clean);
        EXPECT_EQ(result.erasures, n - k);
    }
}

TEST_P(RsRoundTripTest, CorrectsMixedErrorsAndErasures)
{
    const auto [n, k] = GetParam();
    ReedSolomon rs(n, k);
    Rng rng(n * 31 + k);
    const std::size_t parity = n - k;
    for (int trial = 0; trial < 30; ++trial) {
        const auto msg = randomMessage(rng, k);
        const auto clean = rs.encode(msg);
        auto corrupted = clean;
        // 2e + r <= n - k.
        const std::size_t r = rng.below(parity + 1);
        const std::size_t e = (parity - r) / 2 == 0
            ? 0
            : rng.below((parity - r) / 2 + 1);
        const auto positions = rng.sampleIndices(n, r + e);
        const std::vector<std::size_t> erasures(positions.begin(),
                                                positions.begin() +
                                                    static_cast<long>(r));
        for (const std::size_t pos : positions)
            corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const auto result = rs.decode(corrupted, erasures);
        ASSERT_TRUE(result.ok) << "n=" << n << " k=" << k << " e=" << e
                               << " r=" << r;
        EXPECT_EQ(corrupted, clean);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsRoundTripTest,
    ::testing::Values(RsParams{255, 223}, RsParams{255, 127},
                      RsParams{96, 64}, RsParams{60, 40}, RsParams{30, 10},
                      RsParams{15, 11}, RsParams{10, 8}, RsParams{5, 1},
                      RsParams{2, 1}));

TEST(ReedSolomon, BeyondCapacityIsDetectedOrMiscorrected)
{
    // With > t errors RS either fails (ok=false) or lands on a different
    // valid codeword; it must never crash, and an ok result must be a
    // codeword.
    ReedSolomon rs(20, 16); // t = 2
    Rng rng(5);
    std::size_t failures = 0;
    for (int trial = 0; trial < 200; ++trial) {
        auto cw = rs.encode(randomMessage(rng, 16));
        for (const std::size_t pos : rng.sampleIndices(20, 5))
            cw[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const auto result = rs.decode(cw);
        if (!result.ok)
            ++failures;
        else
            EXPECT_TRUE(rs.isCodeword(cw));
    }
    // Most overloads should be detected.
    EXPECT_GT(failures, 100u);
}

TEST_P(RsRoundTripTest, ExactErasureBudgetBoundary)
{
    // The errors-and-erasures boundary: exactly n-k erasures (with no
    // additional errors) must decode; one more must fail cleanly with
    // ok=false, never throw.
    const auto [n, k] = GetParam();
    ReedSolomon rs(n, k);
    Rng rng(n * 131 + k);
    const auto msg = randomMessage(rng, k);
    const auto clean = rs.encode(msg);

    {
        auto corrupted = clean;
        std::vector<std::size_t> erasures(n - k);
        for (std::size_t i = 0; i < erasures.size(); ++i) {
            erasures[i] = i;
            corrupted[i] = static_cast<std::uint8_t>(rng.below(256));
        }
        const auto result = rs.decode(corrupted, erasures);
        ASSERT_TRUE(result.ok) << "n=" << n << " k=" << k;
        EXPECT_EQ(corrupted, clean);
        EXPECT_EQ(result.erasures, n - k);
        EXPECT_EQ(result.errors, 0u);
    }

    if (n - k + 1 <= n) {
        auto corrupted = clean;
        std::vector<std::size_t> erasures(n - k + 1);
        for (std::size_t i = 0; i < erasures.size(); ++i) {
            erasures[i] = i;
            corrupted[i] = static_cast<std::uint8_t>(rng.below(256));
        }
        ReedSolomon::DecodeResult result;
        EXPECT_NO_THROW(result = rs.decode(corrupted, erasures));
        EXPECT_FALSE(result.ok) << "n=" << n << " k=" << k;
    }
}

TEST(ReedSolomon, ErasureBudgetPlusOneErrorFails)
{
    // n-k erasures consume the whole budget; a single extra unknown
    // error must be reported as a failure, not silently miscorrected
    // into an accepted wrong answer.
    ReedSolomon rs(30, 10); // budget 20
    Rng rng(17);
    const auto msg = randomMessage(rng, 10);
    const auto clean = rs.encode(msg);
    auto corrupted = clean;
    std::vector<std::size_t> erasures(20);
    for (std::size_t i = 0; i < erasures.size(); ++i)
        erasures[i] = i;
    corrupted[25] ^= 0x5a; // unknown-position error on top
    const auto result = rs.decode(corrupted, erasures);
    if (result.ok) // miscorrection is allowed only onto a valid codeword
        EXPECT_TRUE(rs.isCodeword(corrupted));
    else
        SUCCEED();
}

TEST(ReedSolomon, TooManyErasuresFails)
{
    ReedSolomon rs(20, 16);
    Rng rng(6);
    auto cw = rs.encode(randomMessage(rng, 16));
    std::vector<std::size_t> erasures = {0, 1, 2, 3, 4};
    for (const std::size_t pos : erasures)
        cw[pos] = 0;
    const auto result = rs.decode(cw, erasures);
    EXPECT_FALSE(result.ok);
}

TEST(ReedSolomon, FailedDecodeReportsAttemptedErasures)
{
    // The failure result is part of the API contract: erasures counts
    // the (deduplicated) positions the decoder attempted to fill, and
    // errors stays 0 because no correction happened.
    ReedSolomon rs(20, 16); // parity 4
    Rng rng(11);
    auto cw = rs.encode(randomMessage(rng, 16));
    const std::vector<std::size_t> erasures = {0, 1, 2, 2, 3, 4, 5};
    const auto result = rs.decode(cw, erasures);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.erasures, 6u);
    EXPECT_EQ(result.errors, 0u);
}

TEST(ReedSolomon, FailureResultHasNoPhantomCorrections)
{
    // Beyond-capacity corruption with no erasure hints: whenever the
    // decoder reports failure, both counters must be zero — a failed
    // decode never claims to have fixed anything.
    ReedSolomon rs(24, 18); // t = 3
    Rng rng(23);
    for (int trial = 0; trial < 32; ++trial) {
        auto cw = rs.encode(randomMessage(rng, 18));
        for (std::size_t i = 0; i < 7; ++i) // t + 4 errors
            cw[(i * 3) % cw.size()] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
        const auto result = rs.decode(cw);
        if (!result.ok) {
            EXPECT_EQ(result.errors, 0u);
            EXPECT_EQ(result.erasures, 0u);
        }
    }
}

TEST(ReedSolomon, ErasurePositionsOutOfRangeThrow)
{
    ReedSolomon rs(20, 16);
    std::vector<std::uint8_t> cw(20, 0);
    const std::vector<std::size_t> bad_erasure = {20};
    EXPECT_THROW((void)rs.decode(cw, bad_erasure), std::invalid_argument);
}

TEST(ReedSolomon, WrongCodewordSizeThrows)
{
    ReedSolomon rs(20, 16);
    std::vector<std::uint8_t> cw(19, 0);
    EXPECT_THROW((void)rs.decode(cw), std::invalid_argument);
}

TEST(ReedSolomon, DuplicateErasuresAreDeduplicated)
{
    Rng rng(7);
    ReedSolomon rs(20, 14);
    const auto clean = rs.encode(randomMessage(rng, 14));
    auto corrupted = clean;
    corrupted[3] ^= 0x55;
    const std::vector<std::size_t> dup_erasures = {3, 3, 3};
    const auto result = rs.decode(corrupted, dup_erasures);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(corrupted, clean);
    EXPECT_EQ(result.erasures, 1u);
}

TEST(ReedSolomon, AllZeroMessage)
{
    ReedSolomon rs(16, 8);
    const std::vector<std::uint8_t> msg(8, 0);
    auto cw = rs.encode(msg);
    EXPECT_EQ(cw, std::vector<std::uint8_t>(16, 0));
    cw[5] = 9;
    const auto result = rs.decode(cw);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(cw, std::vector<std::uint8_t>(16, 0));
}

TEST(ReedSolomon, CapacityAccessors)
{
    ReedSolomon rs(255, 223);
    EXPECT_EQ(rs.n(), 255u);
    EXPECT_EQ(rs.k(), 223u);
    EXPECT_EQ(rs.parity(), 32u);
    EXPECT_EQ(rs.correctionCapacity(), 16u);
}

} // namespace
} // namespace dnastore
