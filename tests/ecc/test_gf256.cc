/**
 * @file
 * Tests for GF(2^8) field arithmetic and polynomial helpers.
 */

#include <gtest/gtest.h>

#include "ecc/gf256.hh"
#include "util/random.hh"

namespace dnastore
{
namespace gf256
{
namespace
{

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(add(0xFF, 0xFF), 0);
}

TEST(Gf256, MulIdentityAndZero)
{
    for (int a = 0; a < 256; ++a) {
        const auto v = static_cast<std::uint8_t>(a);
        EXPECT_EQ(mul(v, 1), v);
        EXPECT_EQ(mul(1, v), v);
        EXPECT_EQ(mul(v, 0), 0);
        EXPECT_EQ(mul(0, v), 0);
    }
}

TEST(Gf256, MulKnownValue)
{
    // 0x53 * 0xCA = 0x01 under 0x11D (classic AES-adjacent test pair is
    // for 0x11B; verify via inverse property instead for 0x11D).
    const std::uint8_t p = mul(0x53, inverse(0x53));
    EXPECT_EQ(p, 1);
}

TEST(Gf256, MulCommutative)
{
    Rng rng(1);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(mul(a, b), mul(b, a));
    }
}

TEST(Gf256, MulAssociative)
{
    Rng rng(2);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        const auto c = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    }
}

TEST(Gf256, Distributive)
{
    Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        const auto c = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }
}

TEST(Gf256, EveryNonzeroHasInverse)
{
    for (int a = 1; a < 256; ++a) {
        const auto v = static_cast<std::uint8_t>(a);
        EXPECT_EQ(mul(v, inverse(v)), 1) << "a=" << a;
    }
}

TEST(Gf256, DivIsMulByInverse)
{
    Rng rng(4);
    for (int trial = 0; trial < 300; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
        EXPECT_EQ(div(a, b), mul(a, inverse(b)));
        EXPECT_EQ(mul(div(a, b), b), a);
    }
}

TEST(Gf256, ZeroDivisionThrows)
{
    EXPECT_THROW(div(5, 0), std::domain_error);
    EXPECT_THROW(inverse(0), std::domain_error);
    EXPECT_THROW(logOf(0), std::domain_error);
}

TEST(Gf256, AlphaPowersCycle)
{
    EXPECT_EQ(alphaPow(0), 1);
    EXPECT_EQ(alphaPow(1), kAlpha);
    EXPECT_EQ(alphaPow(255), 1); // multiplicative order 255
    EXPECT_EQ(alphaPow(-1), inverse(kAlpha));
    EXPECT_EQ(alphaPow(256), kAlpha);
}

TEST(Gf256, AlphaGeneratesWholeGroup)
{
    std::vector<bool> seen(256, false);
    for (int p = 0; p < 255; ++p)
        seen[alphaPow(p)] = true;
    int count = 0;
    for (int v = 1; v < 256; ++v)
        count += seen[static_cast<std::size_t>(v)];
    EXPECT_EQ(count, 255);
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    Rng rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        const auto a = static_cast<std::uint8_t>(1 + rng.below(255));
        const unsigned e = static_cast<unsigned>(rng.below(20));
        std::uint8_t expected = 1;
        for (unsigned i = 0; i < e; ++i)
            expected = mul(expected, a);
        EXPECT_EQ(pow(a, e), expected);
    }
    EXPECT_EQ(pow(0, 0), 1);
    EXPECT_EQ(pow(0, 5), 0);
}

TEST(Gf256Poly, DegreeAndTrim)
{
    Poly p = {1, 2, 0, 0};
    EXPECT_EQ(degree(p), 1);
    trim(p);
    EXPECT_EQ(p.size(), 2u);
    Poly zero = {0, 0};
    EXPECT_EQ(degree(zero), -1);
    trim(zero);
    EXPECT_TRUE(zero.empty());
}

TEST(Gf256Poly, AddCancels)
{
    const Poly p = {1, 2, 3};
    const Poly sum = polyAdd(p, p);
    EXPECT_TRUE(sum.empty()); // characteristic 2
}

TEST(Gf256Poly, MulByConstantAndX)
{
    const Poly p = {5, 7};
    const Poly x = {0, 1};
    const Poly shifted = polyMul(p, x);
    ASSERT_EQ(shifted.size(), 3u);
    EXPECT_EQ(shifted[0], 0);
    EXPECT_EQ(shifted[1], 5);
    EXPECT_EQ(shifted[2], 7);
}

TEST(Gf256Poly, EvalHorner)
{
    // p(x) = 3 + 2x; p(4) = 3 + 2*4 in GF arithmetic.
    const Poly p = {3, 2};
    EXPECT_EQ(polyEval(p, 4), add(3, mul(2, 4)));
    EXPECT_EQ(polyEval({}, 9), 0);
}

TEST(Gf256Poly, DivModProperty)
{
    Rng rng(6);
    for (int trial = 0; trial < 200; ++trial) {
        Poly p(1 + rng.below(20));
        for (auto &c : p)
            c = static_cast<std::uint8_t>(rng.below(256));
        Poly d(1 + rng.below(8));
        for (auto &c : d)
            c = static_cast<std::uint8_t>(rng.below(256));
        if (degree(d) < 0)
            d = {1};
        Poly q, r;
        polyDivMod(p, d, q, r);
        EXPECT_LT(degree(r), degree(d));
        const Poly reconstructed = polyAdd(polyMul(q, d), r);
        Poly trimmed = p;
        trim(trimmed);
        EXPECT_EQ(reconstructed, trimmed);
    }
}

TEST(Gf256Poly, DivByZeroThrows)
{
    Poly q, r;
    EXPECT_THROW(polyDivMod({1, 2}, {0, 0}, q, r), std::domain_error);
}

TEST(Gf256Poly, DerivativeCharacteristic2)
{
    // d/dx (a + bx + cx^2 + dx^3) = b + 3d x^2 = b + d x^2 in char 2.
    const Poly p = {9, 7, 5, 3};
    const Poly d = polyDerivative(p);
    ASSERT_GE(d.size(), 3u);
    EXPECT_EQ(d[0], 7);
    EXPECT_EQ(d[1], 0);
    EXPECT_EQ(d[2], 3);
}

TEST(Gf256Poly, ModXk)
{
    const Poly p = {1, 2, 3, 4};
    const Poly m = polyModXk(p, 2);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0], 1);
    EXPECT_EQ(m[1], 2);
}

} // namespace
} // namespace gf256
} // namespace dnastore
