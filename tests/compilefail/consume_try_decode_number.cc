// Positive control for the drop_try_decode_number.cc compile-fail test:
// the identical call with its result consumed must compile, proving the
// negative case fails because of [[nodiscard]] and not a broken include
// path or flag set.
#include "dna/strand.hh"

bool
consumeDecodeResult(const dnastore::Strand &s)
{
    const auto value = dnastore::strand::tryDecodeNumber(s);
    return value.has_value();
}
