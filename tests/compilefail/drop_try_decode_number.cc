// Negative compile test for the dnalint R1 [[nodiscard]] contract:
// dropping the result of strand::tryDecodeNumber must NOT compile under
// the strict build (-Werror=unused-result).  tests/CMakeLists.txt
// try_compile()s this file and fails the configure if it succeeds.
#include "dna/strand.hh"

void
dropDecodeResult(const dnastore::Strand &s)
{
    dnastore::strand::tryDecodeNumber(s);
}
