/**
 * @file
 * Tests for Hamming and Levenshtein distances, including metric axioms
 * and agreement between the banded and exact algorithms.
 */

#include <gtest/gtest.h>

#include "dna/distance.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(Hamming, KnownCases)
{
    EXPECT_EQ(hammingDistance("", ""), 0u);
    EXPECT_EQ(hammingDistance("ACGT", "ACGT"), 0u);
    EXPECT_EQ(hammingDistance("ACGT", "ACGA"), 1u);
    EXPECT_EQ(hammingDistance("AAAA", "TTTT"), 4u);
}

TEST(Hamming, LengthMismatchThrows)
{
    EXPECT_THROW(hammingDistance("A", "AA"), std::invalid_argument);
}

TEST(Levenshtein, KnownCases)
{
    EXPECT_EQ(levenshtein("", ""), 0u);
    EXPECT_EQ(levenshtein("", "ACG"), 3u);
    EXPECT_EQ(levenshtein("ACG", ""), 3u);
    EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
    EXPECT_EQ(levenshtein("ACGT", "AGT"), 1u);
    EXPECT_EQ(levenshtein("ACGT", "ACGTT"), 1u);
    EXPECT_EQ(levenshtein("ACGT", "TGCA"), 4u);
}

TEST(Levenshtein, SymmetryProperty)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const Strand a = strand::random(rng, rng.below(40));
        const Strand b = strand::random(rng, rng.below(40));
        EXPECT_EQ(levenshtein(a, b), levenshtein(b, a));
    }
}

TEST(Levenshtein, IdentityProperty)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        const Strand a = strand::random(rng, rng.below(60));
        EXPECT_EQ(levenshtein(a, a), 0u);
    }
}

TEST(Levenshtein, TriangleInequality)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const Strand a = strand::random(rng, rng.below(25));
        const Strand b = strand::random(rng, rng.below(25));
        const Strand c = strand::random(rng, rng.below(25));
        EXPECT_LE(levenshtein(a, c),
                  levenshtein(a, b) + levenshtein(b, c));
    }
}

TEST(Levenshtein, SingleEditDistancesAreOne)
{
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        const Strand a = strand::random(rng, 20 + rng.below(20));
        // Substitution.
        Strand sub = a;
        const std::size_t i = rng.below(a.size());
        sub[i] = sub[i] == 'A' ? 'C' : 'A';
        EXPECT_EQ(levenshtein(a, sub), 1u);
        // Deletion.
        Strand del = a;
        del.erase(rng.below(del.size()), 1);
        EXPECT_EQ(levenshtein(a, del), 1u);
        // Insertion.
        Strand ins = a;
        ins.insert(rng.below(ins.size() + 1), 1, 'G');
        EXPECT_EQ(levenshtein(a, ins), 1u);
    }
}

class BoundedLevenshteinTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BoundedLevenshteinTest, AgreesWithExact)
{
    const std::size_t max_distance = GetParam();
    Rng rng(100 + max_distance);
    for (int trial = 0; trial < 300; ++trial) {
        const Strand a = strand::random(rng, rng.below(50));
        const Strand b = strand::random(rng, rng.below(50));
        const std::size_t exact = levenshtein(a, b);
        const std::size_t banded = boundedLevenshtein(a, b, max_distance);
        if (exact <= max_distance)
            EXPECT_EQ(banded, exact) << a << " vs " << b;
        else
            EXPECT_EQ(banded, max_distance + 1) << a << " vs " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, BoundedLevenshteinTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 40));

TEST(BoundedLevenshtein, NearbyStringsFoundCheaply)
{
    Rng rng(5);
    const Strand a = strand::random(rng, 200);
    Strand b = a;
    b[50] = b[50] == 'A' ? 'C' : 'A';
    b.erase(120, 1);
    EXPECT_EQ(boundedLevenshtein(a, b, 5), 2u);
}

TEST(WithinEditDistance, MatchesBoundedResult)
{
    EXPECT_TRUE(withinEditDistance("ACGT", "ACGA", 1));
    EXPECT_FALSE(withinEditDistance("ACGT", "TGCA", 3));
    EXPECT_TRUE(withinEditDistance("ACGT", "TGCA", 4));
}

class MyersLengthTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MyersLengthTest, AgreesWithReferenceDp)
{
    const std::size_t len = GetParam();
    Rng rng(9000 + len);
    for (int trial = 0; trial < 60; ++trial) {
        const Strand a = strand::random(rng, rng.below(len + 1));
        const Strand b = strand::random(rng, rng.below(len + 1));
        EXPECT_EQ(myersLevenshtein(a, b), levenshtein(a, b))
            << "a=" << a << " b=" << b;
    }
}

// Lengths straddling the 64-bit block boundaries of the bit-parallel
// kernel (1 block, exactly 1 block, 2 blocks, 3+ blocks).
INSTANTIATE_TEST_SUITE_P(BlockBoundaries, MyersLengthTest,
                         ::testing::Values(1, 8, 63, 64, 65, 127, 128,
                                           129, 200, 300));

TEST(MyersLevenshtein, EdgeCases)
{
    EXPECT_EQ(myersLevenshtein("", ""), 0u);
    EXPECT_EQ(myersLevenshtein("", "ACGT"), 4u);
    EXPECT_EQ(myersLevenshtein("ACGT", ""), 4u);
    EXPECT_EQ(myersLevenshtein("kitten", "sitting"), 3u);
    const Strand s(200, 'A');
    EXPECT_EQ(myersLevenshtein(s, s), 0u);
    EXPECT_EQ(myersLevenshtein(s, Strand(200, 'T')), 200u);
}

TEST(MyersLevenshtein, NearbyLongStrings)
{
    Rng rng(10);
    const Strand a = strand::random(rng, 500);
    Strand b = a;
    b[100] = b[100] == 'A' ? 'C' : 'A';
    b.erase(300, 2);
    b.insert(400, "GT");
    EXPECT_EQ(myersLevenshtein(a, b), levenshtein(a, b));
}

TEST(BoundedLevenshtein, LengthGapShortCircuits)
{
    // Distance is at least the length difference.
    EXPECT_EQ(boundedLevenshtein("A", "AAAAAAAA", 3), 4u);
}

} // namespace
} // namespace dnastore
