/**
 * @file
 * Tests for pairwise global alignment, edit classification and the
 * profile multiple sequence alignment.
 */

#include <gtest/gtest.h>

#include "dna/align.hh"
#include "dna/distance.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(GlobalAlign, IdenticalStrings)
{
    const auto aln = globalAlign("ACGT", "ACGT");
    EXPECT_EQ(aln.aligned_a, "ACGT");
    EXPECT_EQ(aln.aligned_b, "ACGT");
    EXPECT_EQ(aln.score, 8); // 4 matches x 2
}

TEST(GlobalAlign, EmptySequences)
{
    const auto aln = globalAlign("", "ACG");
    EXPECT_EQ(aln.aligned_a, "---");
    EXPECT_EQ(aln.aligned_b, "ACG");
    const auto both_empty = globalAlign("", "");
    EXPECT_EQ(both_empty.aligned_a, "");
    EXPECT_EQ(both_empty.score, 0);
}

TEST(GlobalAlign, AlignedLengthsMatch)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        const Strand a = strand::random(rng, rng.below(40));
        const Strand b = strand::random(rng, rng.below(40));
        const auto aln = globalAlign(a, b);
        EXPECT_EQ(aln.aligned_a.size(), aln.aligned_b.size());
        // Removing gaps recovers the originals.
        std::string ra, rb;
        for (char c : aln.aligned_a)
            if (c != '-')
                ra.push_back(c);
        for (char c : aln.aligned_b)
            if (c != '-')
                rb.push_back(c);
        EXPECT_EQ(ra, a);
        EXPECT_EQ(rb, b);
    }
}

TEST(GlobalAlign, NoDoubleGapColumns)
{
    Rng rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        const Strand a = strand::random(rng, rng.below(30));
        const Strand b = strand::random(rng, rng.below(30));
        const auto aln = globalAlign(a, b);
        for (std::size_t i = 0; i < aln.aligned_a.size(); ++i)
            EXPECT_FALSE(aln.aligned_a[i] == '-' && aln.aligned_b[i] == '-');
    }
}

TEST(ClassifyEdits, PerfectCopyIsAllMatches)
{
    const auto ops = classifyEdits("ACGTAC", "ACGTAC");
    EXPECT_EQ(ops.size(), 6u);
    for (const auto &op : ops)
        EXPECT_EQ(op.kind, EditKind::Match);
}

TEST(ClassifyEdits, DetectsSubstitution)
{
    const auto ops = classifyEdits("AAAA", "AATA");
    std::size_t subs = 0;
    for (const auto &op : ops)
        subs += op.kind == EditKind::Substitution;
    EXPECT_EQ(subs, 1u);
}

TEST(ClassifyEdits, DetectsDeletionPosition)
{
    const auto ops = classifyEdits("ACGTTT", "AGTTT"); // C deleted
    std::size_t dels = 0;
    for (const auto &op : ops) {
        if (op.kind == EditKind::Deletion) {
            ++dels;
            EXPECT_EQ(op.ref_char, 'C');
            EXPECT_EQ(op.ref_pos, 1u);
        }
    }
    EXPECT_EQ(dels, 1u);
}

TEST(ClassifyEdits, DetectsInsertion)
{
    const auto ops = classifyEdits("AACC", "AAGCC"); // G inserted
    std::size_t ins = 0;
    for (const auto &op : ops) {
        if (op.kind == EditKind::Insertion) {
            ++ins;
            EXPECT_EQ(op.read_char, 'G');
        }
    }
    EXPECT_EQ(ins, 1u);
}

TEST(ClassifyEdits, EditCountMatchesLevenshteinApprox)
{
    // The alignment minimises score, not edit count, but with the
    // default scores each edit costs and the op count upper-bounds the
    // edit distance.
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        const Strand a = strand::random(rng, 20 + rng.below(20));
        const Strand b = strand::random(rng, 20 + rng.below(20));
        const auto ops = classifyEdits(a, b);
        std::size_t edits = 0;
        for (const auto &op : ops)
            edits += op.kind != EditKind::Match;
        EXPECT_GE(edits, levenshtein(a, b));
    }
}

TEST(ProfileMsa, SingleReadConsensusIsItself)
{
    ProfileMsa msa;
    msa.addRead("ACGTACGT");
    EXPECT_EQ(msa.consensus(), "ACGTACGT");
    EXPECT_EQ(msa.numReads(), 1u);
    EXPECT_EQ(msa.numColumns(), 8u);
}

TEST(ProfileMsa, MajorityWinsOnSubstitutions)
{
    ProfileMsa msa;
    msa.addRead("ACGTACGT");
    msa.addRead("ACGAACGT"); // sub at index 3
    msa.addRead("ACGTACGT");
    EXPECT_EQ(msa.consensus(), "ACGTACGT");
}

TEST(ProfileMsa, RecoversFromIndels)
{
    ProfileMsa msa;
    msa.addRead("ACGTACGTAC");
    msa.addRead("ACGACGTAC");   // deletion
    msa.addRead("ACGTTACGTAC"); // insertion
    msa.addRead("ACGTACGTAC");
    EXPECT_EQ(msa.consensus(10), "ACGTACGTAC");
}

TEST(ProfileMsa, TrimsToExpectedLength)
{
    ProfileMsa msa;
    msa.addRead("AACCGGTTAA");
    msa.addRead("AACCGGTTAAT"); // one trailing insertion
    const auto consensus = msa.consensus(10);
    EXPECT_EQ(consensus.size(), 10u);
}

TEST(ProfileMsa, RejectsInvalidCharacters)
{
    ProfileMsa msa;
    EXPECT_THROW(msa.addRead("ACGN"), std::invalid_argument);
}

TEST(ProfileMsa, ManyNoisyReadsConverge)
{
    Rng rng(4);
    const Strand original = strand::random(rng, 60);
    ProfileMsa msa;
    for (int r = 0; r < 12; ++r) {
        Strand read = original;
        // One random substitution per read.
        const std::size_t i = rng.below(read.size());
        read[i] = read[i] == 'A' ? 'C' : 'A';
        msa.addRead(read);
    }
    EXPECT_EQ(msa.consensus(60), original);
}

} // namespace
} // namespace dnastore
