/**
 * @file
 * Tests for strand utilities: packing, complements, statistics.
 */

#include <gtest/gtest.h>

#include "codec/index_codec.hh"
#include "dna/base.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(Base, CharCodeRoundTrip)
{
    for (std::uint8_t code = 0; code < 4; ++code)
        EXPECT_EQ(charToCode(baseToChar(code)), code);
}

TEST(Base, LowerCaseAccepted)
{
    EXPECT_EQ(charToCode('a'), charToCode('A'));
    EXPECT_EQ(charToCode('t'), charToCode('T'));
}

TEST(Base, InvalidCharRejected)
{
    EXPECT_EQ(charToCode('N'), 0xff);
    EXPECT_EQ(charToCode('-'), 0xff);
}

TEST(Base, ComplementPairs)
{
    EXPECT_EQ(complementChar('A'), 'T');
    EXPECT_EQ(complementChar('T'), 'A');
    EXPECT_EQ(complementChar('C'), 'G');
    EXPECT_EQ(complementChar('G'), 'C');
}

TEST(Strand, IsValid)
{
    EXPECT_TRUE(strand::isValid("ACGT"));
    EXPECT_TRUE(strand::isValid(""));
    EXPECT_FALSE(strand::isValid("ACGN"));
    EXPECT_FALSE(strand::isValid("acgt")); // lower case is not canonical
}

TEST(Strand, RandomHasRequestedLengthAndAlphabet)
{
    Rng rng(1);
    const Strand s = strand::random(rng, 500);
    EXPECT_EQ(s.size(), 500u);
    EXPECT_TRUE(strand::isValid(s));
}

TEST(Strand, RandomIsRoughlyBalanced)
{
    Rng rng(2);
    const Strand s = strand::random(rng, 20000);
    EXPECT_NEAR(strand::gcContent(s), 0.5, 0.02);
}

TEST(Strand, GcContent)
{
    EXPECT_DOUBLE_EQ(strand::gcContent("GGCC"), 1.0);
    EXPECT_DOUBLE_EQ(strand::gcContent("AATT"), 0.0);
    EXPECT_DOUBLE_EQ(strand::gcContent("ACGT"), 0.5);
    EXPECT_DOUBLE_EQ(strand::gcContent(""), 0.0);
}

TEST(Strand, MaxHomopolymerRun)
{
    EXPECT_EQ(strand::maxHomopolymerRun(""), 0u);
    EXPECT_EQ(strand::maxHomopolymerRun("ACGT"), 1u);
    EXPECT_EQ(strand::maxHomopolymerRun("AAACC"), 3u);
    EXPECT_EQ(strand::maxHomopolymerRun("CCAAAA"), 4u);
}

TEST(Strand, ReverseComplementKnown)
{
    EXPECT_EQ(strand::reverseComplement("ACGT"), "ACGT");
    EXPECT_EQ(strand::reverseComplement("AACG"), "CGTT");
}

TEST(Strand, ReverseComplementIsInvolution)
{
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const Strand s = strand::random(rng, 1 + rng.below(200));
        EXPECT_EQ(strand::reverseComplement(strand::reverseComplement(s)),
                  s);
    }
}

TEST(Strand, BytesRoundTrip)
{
    Rng rng(4);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> data(rng.below(64));
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        const Strand s = strand::fromBytes(data);
        EXPECT_EQ(s.size(), data.size() * 4);
        EXPECT_EQ(strand::toBytes(s), data);
    }
}

TEST(Strand, FromBytesKnownPattern)
{
    // 0b00011011 = A C G T.
    EXPECT_EQ(strand::fromBytes({0x1B}), "ACGT");
    EXPECT_EQ(strand::fromBytes({0x00}), "AAAA");
    EXPECT_EQ(strand::fromBytes({0xFF}), "TTTT");
}

TEST(Strand, ToBytesRejectsBadInput)
{
    EXPECT_THROW(strand::toBytes("ACG"), std::invalid_argument);
    EXPECT_THROW(strand::toBytes("ACGN"), std::invalid_argument);
}

class NumberWidthTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(NumberWidthTest, EncodeDecodeRoundTrip)
{
    const std::size_t width = GetParam();
    Rng rng(width);
    const std::uint64_t cap = width >= 32
        ? ~0ULL
        : (1ULL << (2 * width)) - 1;
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t value =
            cap == ~0ULL ? rng.next() : rng.below(cap + 1);
        const Strand s = strand::encodeNumber(value, width);
        EXPECT_EQ(s.size(), width);
        EXPECT_EQ(strand::decodeNumber(s), value);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, NumberWidthTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 31, 32));

TEST(Strand, EncodeNumberOverflowThrows)
{
    EXPECT_THROW(strand::encodeNumber(4, 1), std::invalid_argument);
    EXPECT_THROW(strand::encodeNumber(256, 4), std::invalid_argument);
    EXPECT_NO_THROW(strand::encodeNumber(255, 4));
}

TEST(Strand, DecodeNumberRejectsBadChars)
{
    EXPECT_THROW((void)strand::decodeNumber("ACZ"), std::invalid_argument);
}

TEST(Strand, TryDecodeNumberEmptyStrandIsZero)
{
    const auto value = strand::tryDecodeNumber("");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 0u);
    EXPECT_EQ(strand::encodeNumber(0, 0), "");
}

TEST(Strand, TryDecodeNumberRejectsOverflowLength)
{
    // 33 bases exceed the 64-bit value range, so the field cannot round
    // trip and must be rejected rather than silently wrapped.
    const Strand too_long(33, 'A');
    EXPECT_FALSE(strand::tryDecodeNumber(too_long).has_value());
    EXPECT_THROW((void)strand::decodeNumber(too_long), std::invalid_argument);

    const Strand max_width(32, 'T');
    const auto value = strand::tryDecodeNumber(max_width);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, ~0ULL);
}

TEST(Strand, TryDecodeNumberRejectsNonAcgt)
{
    EXPECT_FALSE(strand::tryDecodeNumber("ACZ").has_value());
    EXPECT_FALSE(strand::tryDecodeNumber("ACG\n").has_value());
    EXPECT_FALSE(strand::tryDecodeNumber("AC T").has_value());
    EXPECT_FALSE(strand::tryDecodeNumber(Strand(1, '\0')).has_value());
    // Soft-masked (lowercase) bases are legal everywhere in the toolkit.
    EXPECT_EQ(strand::tryDecodeNumber("acgt"),
              strand::tryDecodeNumber("ACGT"));
}

TEST(Strand, TryDecodeNumberRoundTripsIndexCodecMaxIndex)
{
    for (std::size_t width : {1u, 8u, 16u, 32u}) {
        const IndexCodec codec(width);
        const Strand encoded = codec.encode(codec.maxIndex());
        const auto direct = strand::tryDecodeNumber(encoded);
        ASSERT_TRUE(direct.has_value()) << "width " << width;
        EXPECT_EQ(*direct, codec.maxIndex());
        const auto via_codec = codec.decode(encoded);
        ASSERT_TRUE(via_codec.has_value());
        EXPECT_EQ(*via_codec, codec.maxIndex());
    }
}

TEST(Strand, MismatchPositions)
{
    const auto pos = strand::mismatchPositions("ACGT", "AGGA");
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[0], 1u);
    EXPECT_EQ(pos[1], 3u);
    EXPECT_THROW(strand::mismatchPositions("A", "AC"),
                 std::invalid_argument);
}

} // namespace
} // namespace dnastore
