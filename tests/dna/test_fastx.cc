/**
 * @file
 * Tests for FASTA/FASTQ parsing and serialisation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dna/fastx.hh"

namespace dnastore
{
namespace
{

TEST(Fastq, RoundTrip)
{
    std::vector<FastqRecord> records = {
        {"read1", "ACGT", "IIII"},
        {"read2 extra info", "GGCC", "!!!!"},
    };
    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in(out.str());
    const auto parsed = readFastq(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].id, "read1");
    EXPECT_EQ(parsed[0].sequence, "ACGT");
    EXPECT_EQ(parsed[0].quality, "IIII");
    EXPECT_EQ(parsed[1].id, "read2 extra info");
}

TEST(Fastq, ToleratesCrlfAndBlankLines)
{
    std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII\r\n\n@r2\nGG\n+\nII\n");
    const auto parsed = readFastq(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].sequence, "ACGT");
    EXPECT_EQ(parsed[1].sequence, "GG");
}

TEST(Fastq, RejectsMissingAtSign)
{
    std::istringstream in("r1\nACGT\n+\nIIII\n");
    EXPECT_THROW(readFastq(in), std::runtime_error);
}

TEST(Fastq, RejectsTruncatedRecord)
{
    std::istringstream in("@r1\nACGT\n+\n");
    EXPECT_THROW(readFastq(in), std::runtime_error);
}

TEST(Fastq, RejectsLengthMismatch)
{
    std::istringstream in("@r1\nACGT\n+\nIII\n");
    EXPECT_THROW(readFastq(in), std::runtime_error);
}

TEST(Fastq, RejectsMissingPlus)
{
    std::istringstream in("@r1\nACGT\nIIII\nIIII\n");
    EXPECT_THROW(readFastq(in), std::runtime_error);
}

TEST(Fastq, EmptyInputIsEmpty)
{
    std::istringstream in("");
    EXPECT_TRUE(readFastq(in).empty());
}

TEST(Fastq, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/test_roundtrip.fastq";
    std::vector<FastqRecord> records = {{"x", "ACGTACGT", "IIIIIIII"}};
    writeFastqFile(path, records);
    const auto parsed = readFastqFile(path);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].sequence, "ACGTACGT");
}

TEST(Fastq, MissingFileThrows)
{
    EXPECT_THROW(readFastqFile("/no/such/file.fastq"), std::runtime_error);
}

TEST(Fasta, RoundTripWithWrapping)
{
    std::vector<FastaRecord> records = {
        {"seq1", std::string(200, 'A')},
        {"seq2", "ACGT"},
    };
    std::ostringstream out;
    writeFasta(out, records);
    std::istringstream in(out.str());
    const auto parsed = readFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].sequence, std::string(200, 'A'));
    EXPECT_EQ(parsed[1].sequence, "ACGT");
}

TEST(Fasta, MultiLineSequencesJoined)
{
    std::istringstream in(">a\nACG\nTTT\n>b\nGG\n");
    const auto parsed = readFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].sequence, "ACGTTT");
}

TEST(Fasta, SequenceBeforeHeaderThrows)
{
    std::istringstream in("ACGT\n>a\n");
    EXPECT_THROW(readFasta(in), std::runtime_error);
}

} // namespace
} // namespace dnastore
