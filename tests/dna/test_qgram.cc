/**
 * @file
 * Tests for q-gram extraction helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "dna/qgram.hh"

namespace dnastore
{
namespace
{

TEST(DistinctQGrams, EnumeratesInFirstOccurrenceOrder)
{
    const auto grams = distinctQGrams("AABAA", 2);
    ASSERT_EQ(grams.size(), 3u);
    EXPECT_EQ(grams[0], "AA");
    EXPECT_EQ(grams[1], "AB");
    EXPECT_EQ(grams[2], "BA");
}

TEST(DistinctQGrams, EdgeCases)
{
    EXPECT_TRUE(distinctQGrams("ACG", 4).empty());
    EXPECT_TRUE(distinctQGrams("ACG", 0).empty());
    const auto whole = distinctQGrams("ACG", 3);
    ASSERT_EQ(whole.size(), 1u);
    EXPECT_EQ(whole[0], "ACG");
}

TEST(RandomQGramSet, ProducesDistinctGramsOfRightLength)
{
    Rng rng(1);
    const auto set = randomQGramSet(rng, 4, 50);
    EXPECT_EQ(set.size(), 50u);
    std::set<std::string> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), 50u);
    for (const auto &gram : set)
        EXPECT_EQ(gram.size(), 4u);
}

TEST(RandomQGramSet, FullAlphabetCoverage)
{
    Rng rng(2);
    // Request every possible 2-gram: must terminate and return all 16.
    const auto set = randomQGramSet(rng, 2, 16);
    std::set<std::string> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), 16u);
}

TEST(RandomQGramSet, RejectsImpossibleRequests)
{
    Rng rng(3);
    EXPECT_THROW(randomQGramSet(rng, 2, 17), std::invalid_argument);
    EXPECT_THROW(randomQGramSet(rng, 0, 1), std::invalid_argument);
}

TEST(FirstOccurrence, FindsAndMisses)
{
    EXPECT_EQ(firstOccurrence("ACGTACGT", "GTA"), 2);
    EXPECT_EQ(firstOccurrence("ACGTACGT", "TTT"), -1);
    EXPECT_EQ(firstOccurrence("ACGT", "ACGT"), 0);
    EXPECT_EQ(firstOccurrence("", "A"), -1);
}

} // namespace
} // namespace dnastore
