/**
 * @file
 * Gradient checks and invariants for the additive attention layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.hh"

namespace dnastore
{
namespace nn
{
namespace
{

double
forwardLoss(const Attention &attn, const Vec &s_prev,
            const std::vector<Vec> &annotations, const Vec &w)
{
    AttentionCache cache;
    const auto pre = attn.precompute(annotations);
    const Vec ctx = attn.forward(s_prev, annotations, pre, cache);
    double loss = 0;
    for (std::size_t i = 0; i < ctx.size(); ++i)
        loss += static_cast<double>(w[i]) * static_cast<double>(ctx[i]);
    return loss;
}

std::vector<Vec>
makeAnnotations(Rng &rng, std::size_t count, std::size_t size)
{
    std::vector<Vec> anns(count, Vec(size));
    for (auto &ann : anns)
        for (auto &v : ann)
            v = static_cast<float>(rng.uniform(-1, 1));
    return anns;
}

TEST(Attention, WeightsFormDistribution)
{
    Rng rng(1);
    Attention attn(4, 6, 5, "t");
    attn.init(rng, 0.5f);
    const auto anns = makeAnnotations(rng, 7, 6);
    const Vec s_prev = {0.1f, -0.3f, 0.2f, 0.4f};
    AttentionCache cache;
    const auto pre = attn.precompute(anns);
    const Vec ctx = attn.forward(s_prev, anns, pre, cache);
    EXPECT_EQ(ctx.size(), 6u);
    float total = 0;
    for (float a : cache.alpha) {
        EXPECT_GE(a, 0.0f);
        total += a;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(Attention, ContextIsConvexCombination)
{
    // With identical annotations, the context equals that annotation
    // regardless of the weights.
    Rng rng(2);
    Attention attn(3, 4, 4, "t");
    attn.init(rng, 0.5f);
    Vec ann = {0.5f, -0.25f, 0.75f, 0.1f};
    std::vector<Vec> anns(5, ann);
    AttentionCache cache;
    const auto pre = attn.precompute(anns);
    const Vec s_prev = {0.3f, 0.1f, -0.2f};
    const Vec ctx = attn.forward(s_prev, anns, pre, cache);
    for (std::size_t i = 0; i < ann.size(); ++i)
        EXPECT_NEAR(ctx[i], ann[i], 1e-5f);
}

TEST(Attention, GradientsMatchFiniteDifferences)
{
    Rng rng(3);
    Attention attn(3, 4, 5, "t");
    attn.init(rng, 0.6f);
    auto anns = makeAnnotations(rng, 6, 4);
    Vec s_prev = {0.2f, -0.4f, 0.5f};
    Vec w = {0.8f, -0.6f, 1.2f, -0.9f};

    AttentionCache cache;
    const auto pre = attn.precompute(anns);
    attn.forward(s_prev, anns, pre, cache);
    Vec ds_prev(3, 0.0f);
    std::vector<Vec> dann(6, Vec(4, 0.0f));
    for (Param *p : attn.params())
        p->grad.zero();
    attn.backward(cache, anns, w, ds_prev, dann);

    const float eps = 1e-3f;

    for (Param *p : attn.params()) {
        auto &val = p->value.raw();
        for (int rep = 0; rep < 5; ++rep) {
            const std::size_t i = rng.below(val.size());
            const float orig = val[i];
            val[i] = orig + eps;
            const double up = forwardLoss(attn, s_prev, anns, w);
            val[i] = orig - eps;
            const double down = forwardLoss(attn, s_prev, anns, w);
            val[i] = orig;
            EXPECT_NEAR(p->grad.raw()[i], (up - down) / (2.0 * static_cast<double>(eps)), 2e-2)
                << p->name << "[" << i << "]";
        }
    }

    for (std::size_t i = 0; i < s_prev.size(); ++i) {
        const float orig = s_prev[i];
        s_prev[i] = orig + eps;
        const double up = forwardLoss(attn, s_prev, anns, w);
        s_prev[i] = orig - eps;
        const double down = forwardLoss(attn, s_prev, anns, w);
        s_prev[i] = orig;
        EXPECT_NEAR(ds_prev[i], (up - down) / (2.0 * static_cast<double>(eps)), 2e-2);
    }

    // Annotation gradients (note: annotations feed both the scores via
    // precompute and the context sum).
    for (int rep = 0; rep < 6; ++rep) {
        const std::size_t a = rng.below(anns.size());
        const std::size_t i = rng.below(anns[a].size());
        const float orig = anns[a][i];
        anns[a][i] = orig + eps;
        const double up = forwardLoss(attn, s_prev, anns, w);
        anns[a][i] = orig - eps;
        const double down = forwardLoss(attn, s_prev, anns, w);
        anns[a][i] = orig;
        EXPECT_NEAR(dann[a][i], (up - down) / (2.0 * static_cast<double>(eps)), 2e-2)
            << "ann[" << a << "][" << i << "]";
    }
}

} // namespace
} // namespace nn
} // namespace dnastore
