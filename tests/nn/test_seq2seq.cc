/**
 * @file
 * Tests for the full seq2seq channel model: gradient checks through the
 * whole network, training-progress sanity, sampling behaviour and
 * parameter persistence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dna/strand.hh"
#include "nn/seq2seq.hh"

namespace dnastore
{
namespace nn
{
namespace
{

Seq2SeqConfig
tinyConfig()
{
    Seq2SeqConfig cfg;
    cfg.hidden = 6;
    cfg.attention = 5;
    cfg.seed = 1234;
    return cfg;
}

TEST(Seq2Seq, LossIsFiniteAndPositive)
{
    Seq2Seq model(tinyConfig());
    const double loss = model.loss("ACGTACGT", "ACGTACG");
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
}

TEST(Seq2Seq, LossNearUniformAtInit)
{
    // An untrained model should be in the vicinity of the uniform
    // 5-way distribution (ln 5 ~ 1.609) per token.
    Seq2Seq model(tinyConfig());
    const double loss = model.loss("ACGTACGTAC", "ACGTACGTAC");
    EXPECT_GT(loss, 0.8);
    EXPECT_LT(loss, 2.5);
}

TEST(Seq2Seq, RejectsBadInput)
{
    Seq2Seq model(tinyConfig());
    EXPECT_THROW(model.loss("", "ACGT"), std::invalid_argument);
    EXPECT_THROW(model.loss("ACNG", "ACGT"), std::invalid_argument);
}

TEST(Seq2Seq, GradientsMatchFiniteDifferences)
{
    Seq2Seq model(tinyConfig());
    const Strand clean = "ACGTGGT";
    const Strand noisy = "ACGGGTT";

    for (Param *p : model.allParams())
        p->grad.zero();
    model.accumulate(clean, noisy, 1.0);

    Rng rng(5);
    const float eps = 1e-2f;
    std::size_t checked = 0, close = 0;
    for (Param *p : model.allParams()) {
        auto &val = p->value.raw();
        for (int rep = 0; rep < 2; ++rep) {
            const std::size_t i = rng.below(val.size());
            const float orig = val[i];
            val[i] = orig + eps;
            const double up = model.loss(clean, noisy);
            val[i] = orig - eps;
            const double down = model.loss(clean, noisy);
            val[i] = orig;
            const double fd = (up - down) / (2.0 * static_cast<double>(eps));
            const double an = p->grad.raw()[i];
            // float32 noise makes exact agreement impossible; require
            // agreement for all gradients of meaningful magnitude.
            const double denom =
                std::max(std::max(std::abs(fd), std::abs(an)), 1e-3);
            ++checked;
            if (std::abs(fd - an) / denom < 0.15 ||
                std::abs(fd - an) < 2e-3) {
                ++close;
            } else {
                ADD_FAILURE() << p->name << "[" << i << "]: fd=" << fd
                              << " analytic=" << an;
            }
        }
    }
    EXPECT_EQ(checked, close);
}

TEST(Seq2Seq, TrainingReducesLoss)
{
    Seq2SeqConfig cfg = tinyConfig();
    cfg.hidden = 12;
    cfg.attention = 12;
    cfg.adam.lr = 5e-3f;
    Seq2Seq model(cfg);
    Rng rng(7);
    // A trivially learnable channel: identity on short strands.
    std::vector<StrandPair> pairs;
    for (int i = 0; i < 40; ++i) {
        const Strand c = strand::random(rng, 12);
        pairs.push_back({c, c});
    }
    const double before = model.evaluate(pairs);
    model.train(pairs, 25, 8, rng);
    const double after = model.evaluate(pairs);
    EXPECT_LT(after, before * 0.8);
}

TEST(Seq2Seq, SampleAlphabetAndLengthCap)
{
    Seq2SeqConfig cfg = tinyConfig();
    cfg.max_output_percent = 150;
    Seq2Seq model(cfg);
    Rng rng(8);
    const Strand clean = strand::random(rng, 30);
    for (int i = 0; i < 10; ++i) {
        const Strand read = model.sample(clean, rng);
        EXPECT_TRUE(strand::isValid(read));
        EXPECT_LE(read.size(), clean.size() * 150 / 100 + 4);
    }
}

TEST(Seq2Seq, SampleIsStochastic)
{
    Seq2Seq model(tinyConfig());
    Rng rng(9);
    const Strand clean = strand::random(rng, 25);
    const Strand r1 = model.sample(clean, rng);
    const Strand r2 = model.sample(clean, rng);
    // An untrained model produces high-entropy output; two samples
    // matching exactly would be a sign the RNG is not consulted.
    EXPECT_NE(r1, r2);
}

TEST(Seq2Seq, SaveLoadRoundTrip)
{
    Seq2Seq a(tinyConfig());
    const std::string path = ::testing::TempDir() + "/seq2seq_params.bin";
    ASSERT_TRUE(a.save(path));

    Seq2SeqConfig cfg = tinyConfig();
    cfg.seed = 999; // different init; load must overwrite it
    Seq2Seq b(cfg);
    ASSERT_TRUE(b.load(path));
    const double la = a.loss("ACGTACGT", "ACGTAC");
    const double lb = b.loss("ACGTACGT", "ACGTAC");
    EXPECT_NEAR(la, lb, 1e-6);
}

TEST(Seq2Seq, LoadFailsOnMissingFile)
{
    Seq2Seq model(tinyConfig());
    EXPECT_FALSE(model.load("/no/such/params.bin"));
}

TEST(Seq2Seq, CalibrateTemperatureMovesTowardTarget)
{
    Seq2SeqConfig cfg = tinyConfig();
    cfg.hidden = 10;
    cfg.attention = 10;
    Seq2Seq model(cfg);
    Rng rng(11);
    std::vector<Strand> probes;
    for (int i = 0; i < 4; ++i)
        probes.push_back(strand::random(rng, 20));
    const double temp = model.calibrateTemperature(probes, 0.5, rng, 1);
    EXPECT_GT(temp, 0.2);
    EXPECT_LT(temp, 1.7);
}

} // namespace
} // namespace nn
} // namespace dnastore
