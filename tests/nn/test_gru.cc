/**
 * @file
 * Finite-difference gradient checks and behavioural tests for the GRU
 * cell.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gru.hh"

namespace dnastore
{
namespace nn
{
namespace
{

/** Loss = sum_i w_i * h_i for a fixed weight vector. */
double
forwardLoss(GruCell &cell, const Vec &x, const Vec &h_prev, const Vec &w)
{
    GruCache cache;
    const Vec h = cell.forward(x, h_prev, cache);
    double loss = 0;
    for (std::size_t i = 0; i < h.size(); ++i)
        loss += static_cast<double>(w[i]) * static_cast<double>(h[i]);
    return loss;
}

TEST(GruCell, OutputShapeAndDeterminism)
{
    Rng rng(1);
    GruCell cell(3, 5, "t");
    cell.init(rng, 0.5f);
    const Vec x = {0.1f, -0.2f, 0.3f};
    const Vec h0(5, 0.0f);
    GruCache c1, c2;
    const Vec h1 = cell.forward(x, h0, c1);
    const Vec h2 = cell.forward(x, h0, c2);
    EXPECT_EQ(h1.size(), 5u);
    EXPECT_EQ(h1, h2);
}

TEST(GruCell, HiddenStateIsBounded)
{
    // h is a convex combination of h_prev and tanh(...), so |h| <= 1
    // when |h_prev| <= 1.
    Rng rng(2);
    GruCell cell(4, 8, "t");
    cell.init(rng, 1.0f);
    Vec h(8, 0.0f);
    for (int t = 0; t < 50; ++t) {
        Vec x(4);
        for (auto &v : x)
            v = static_cast<float>(rng.uniform(-1, 1));
        GruCache cache;
        h = cell.forward(x, h, cache);
        for (float v : h)
            EXPECT_LE(std::abs(v), 1.0f);
    }
}

TEST(GruCell, GradientsMatchFiniteDifferences)
{
    Rng rng(3);
    GruCell cell(3, 4, "t");
    cell.init(rng, 0.6f);

    Vec x = {0.3f, -0.5f, 0.8f};
    Vec h_prev = {0.1f, -0.2f, 0.4f, -0.3f};
    Vec w = {0.7f, -1.1f, 0.4f, 0.9f}; // loss weights

    // Analytic gradients.
    GruCache cache;
    cell.forward(x, h_prev, cache);
    Vec dx(3, 0.0f), dh_prev(4, 0.0f);
    for (Param *p : cell.params())
        p->grad.zero();
    cell.backward(cache, w, dx, dh_prev);

    const float eps = 1e-3f;

    // Parameter gradients.
    for (Param *p : cell.params()) {
        auto &val = p->value.raw();
        for (int rep = 0; rep < 4; ++rep) {
            const std::size_t i = rng.below(val.size());
            const float orig = val[i];
            val[i] = orig + eps;
            const double up = forwardLoss(cell, x, h_prev, w);
            val[i] = orig - eps;
            const double down = forwardLoss(cell, x, h_prev, w);
            val[i] = orig;
            const double fd = (up - down) / (2.0 * static_cast<double>(eps));
            EXPECT_NEAR(p->grad.raw()[i], fd, 2e-2)
                << p->name << "[" << i << "]";
        }
    }

    // Input gradient.
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double up = forwardLoss(cell, x, h_prev, w);
        x[i] = orig - eps;
        const double down = forwardLoss(cell, x, h_prev, w);
        x[i] = orig;
        EXPECT_NEAR(dx[i], (up - down) / (2.0 * static_cast<double>(eps)), 2e-2);
    }

    // Previous-hidden gradient.
    for (std::size_t i = 0; i < h_prev.size(); ++i) {
        const float orig = h_prev[i];
        h_prev[i] = orig + eps;
        const double up = forwardLoss(cell, x, h_prev, w);
        h_prev[i] = orig - eps;
        const double down = forwardLoss(cell, x, h_prev, w);
        h_prev[i] = orig;
        EXPECT_NEAR(dh_prev[i], (up - down) / (2.0 * static_cast<double>(eps)), 2e-2);
    }
}

TEST(GruCell, BackwardAccumulates)
{
    Rng rng(4);
    GruCell cell(2, 3, "t");
    cell.init(rng, 0.5f);
    const Vec x = {0.2f, -0.4f};
    const Vec h0 = {0.0f, 0.1f, -0.1f};
    GruCache cache;
    cell.forward(x, h0, cache);

    Vec dh = {1.0f, 1.0f, 1.0f};
    Vec dx1(2, 0.0f), dhp1(3, 0.0f);
    for (Param *p : cell.params())
        p->grad.zero();
    cell.backward(cache, dh, dx1, dhp1);
    const float once = cell.wz.grad(0, 0);

    cell.backward(cache, dh, dx1, dhp1);
    EXPECT_NEAR(cell.wz.grad(0, 0), 2 * once, 1e-6);
}

TEST(Adam, StepDecreasesSimpleQuadratic)
{
    // Minimise f(w) = (w - 3)^2 with Adam on a 1x1 parameter.
    Param w(1, 1, "w");
    w.value(0, 0) = 0.0f;
    Adam::Config cfg;
    cfg.lr = 0.1f;
    Adam opt(cfg);
    opt.add(&w);
    for (int iter = 0; iter < 300; ++iter) {
        w.grad(0, 0) = 2.0f * (w.value(0, 0) - 3.0f);
        opt.step();
    }
    EXPECT_NEAR(w.value(0, 0), 3.0f, 0.05f);
}

TEST(Adam, ClipBoundsGradientNorm)
{
    Param w(1, 2, "w");
    Adam::Config cfg;
    cfg.lr = 1.0f;
    cfg.clip_norm = 1.0f;
    Adam opt(cfg);
    opt.add(&w);
    w.grad(0, 0) = 300.0f;
    w.grad(0, 1) = 400.0f;
    opt.step();
    // With clipping to norm 1 and Adam normalisation, the first step
    // magnitude is bounded by lr.
    EXPECT_LE(std::abs(w.value(0, 0)), 1.01f);
    EXPECT_LE(std::abs(w.value(0, 1)), 1.01f);
}

TEST(Adam, ZeroGradClears)
{
    Param w(2, 2, "w");
    Adam opt;
    opt.add(&w);
    w.grad(1, 1) = 5.0f;
    opt.zeroGrad();
    EXPECT_EQ(w.grad(1, 1), 0.0f);
}

} // namespace
} // namespace nn
} // namespace dnastore
