#!/usr/bin/env bash
# End-to-end exercise of the dnastored daemon and the `dnastore client`
# verbs over a real socket: start the daemon on an ephemeral port, round
# trip put -> ls -> stat -> get byte-exactly, verify typed failures exit
# nonzero, then SIGTERM-drain and check the archive fscks clean and the
# server report was written.  Driven by ctest (cli_server_e2e); binary
# paths arrive in $DNASTORE_BIN / $DNASTORED_BIN.
set -euo pipefail

bin="${DNASTORE_BIN:?DNASTORE_BIN must point at the dnastore binary}"
daemon="${DNASTORED_BIN:?DNASTORED_BIN must point at dnastored}"
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2> /dev/null
    rm -rf "$work"
}
trap 'cleanup' EXIT
cd "$work"

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

for _ in $(seq 1 19); do printf '0123456789abcdef'; done > a.full
head -c 300 a.full > a.bin
for _ in $(seq 1 6); do printf 'fedcba9876543210'; done > b.full
head -c 90 b.full > b.bin

arch="$work/tube"
"$daemon" --dir "$arch" --create --port 0 --port-file port.txt \
    --metrics-json report.json --threads 2 \
    --error-rate 0.005 --coverage 8 --seed 11 > daemon.log 2>&1 &
daemon_pid=$!

# Readiness without races: the daemon writes its ephemeral port to
# --port-file after listen().
port=""
for _ in $(seq 1 100); do
    [ -s port.txt ] && { port="$(cat port.txt)"; break; }
    kill -0 "$daemon_pid" 2> /dev/null || fail "daemon died: $(cat daemon.log)"
    sleep 0.1
done
[ -n "$port" ] || fail "daemon never wrote port.txt"

"$bin" client ping --port "$port" --echo hello | grep -q 'pong: hello' \
    || fail "ping echo"
"$bin" client put --port "$port" --name alpha --in a.bin \
    || fail "put alpha"
"$bin" client put --port "$port" --name alpha --in b.bin \
    && fail "duplicate put must exit nonzero"
"$bin" client put --port "$port" --name beta --in b.bin \
    || fail "put beta"
"$bin" client ls --port "$port" | grep -q 'alpha' || fail "ls alpha"
"$bin" client stat --port "$port" --name alpha | grep -q '"size_bytes":300' \
    || fail "stat alpha size"
"$bin" client get --port "$port" --name alpha --out out_a.bin \
    || fail "get alpha"
cmp -s a.bin out_a.bin || fail "alpha round trip not byte-exact"
"$bin" client get --port "$port" --name beta --out out_b.bin \
    || fail "get beta"
cmp -s b.bin out_b.bin || fail "beta round trip not byte-exact"
"$bin" client get --port "$port" --name ghost --out out_g.bin \
    && fail "get of missing object must exit nonzero"

# Graceful drain: SIGTERM, clean exit 0, drain line in the log.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "daemon exit nonzero after SIGTERM"
daemon_pid=""
grep -q 'drained:' daemon.log || fail "no drain summary in daemon log"

# The archive the daemon wrote is consistent on disk...
"$bin" archive fsck --dir "$arch" | grep -q 'clean' \
    || fail "archive not clean after drain"
# ...and the server report is the canonical schema with real traffic.
grep -q '"schema":"dnastore.server_report"' report.json \
    || fail "server report schema marker missing"
grep -q '"requests"' report.json || fail "server report counters missing"

echo "cli_server_e2e OK"
