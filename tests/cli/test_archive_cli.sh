#!/usr/bin/env bash
# End-to-end exercise of the built `dnastore` binary: archive create ->
# put -> ls -> stat -> get -> fsck, asserting exit codes and byte-exact
# round trips.  Driven by ctest (cli_archive_e2e); the binary path
# arrives in $DNASTORE_BIN.
set -euo pipefail

bin="${DNASTORE_BIN:?DNASTORE_BIN must point at the dnastore binary}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
cd "$work"

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Deterministic payloads (round-trip compared, so content only needs to
# be reproducible for debugging).  No pipes: `yes | head` dies of
# SIGPIPE under pipefail.
for _ in $(seq 1 19); do printf '0123456789abcdef'; done > a.full
head -c 300 a.full > a.bin
for _ in $(seq 1 6); do printf 'fedcba9876543210'; done > b.full
head -c 90 b.full > b.bin

arch="$work/tube"

# put auto-creates the archive; a second put under the same name must
# fail without touching the stored object.
"$bin" archive put --dir "$arch" --name alpha --in a.bin \
    || fail "put alpha"
"$bin" archive put --dir "$arch" --name alpha --in b.bin \
    && fail "duplicate put alpha must exit nonzero"
"$bin" archive put --dir "$arch" --name beta --in b.bin --threads 2 \
    || fail "put beta"

# ls and stat report both objects with their exact sizes.
ls_out="$("$bin" archive ls --dir "$arch")"
grep -q 'alpha' <<< "$ls_out" || fail "ls missing alpha"
grep -q '2 object(s)' <<< "$ls_out" || fail "ls object count"
stat_out="$("$bin" archive stat --dir "$arch" --name alpha)"
grep -q 'size: 300 bytes' <<< "$stat_out" || fail "stat alpha size"
"$bin" archive stat --dir "$arch" --name ghost \
    && fail "stat of missing object must exit nonzero"

# get round-trips byte-exactly through the simulated wetlab.
"$bin" archive get --dir "$arch" --name alpha --out out_a.bin --seed 7 \
    || fail "get alpha"
cmp -s a.bin out_a.bin || fail "alpha round trip not byte-exact"
"$bin" archive get --dir "$arch" --name beta --out out_b.bin --seed 7 \
    || fail "get beta"
cmp -s b.bin out_b.bin || fail "beta round trip not byte-exact"
"$bin" archive get --dir "$arch" --name ghost --out out_g.bin \
    && fail "get of missing object must exit nonzero"

# fsck: clean archive, then a planted stale staging file is detected
# (healthy, exit 0), swept by --repair, and the rescan is clean again.
fsck_out="$("$bin" archive fsck --dir "$arch" --json fsck.json)"
grep -q 'clean' <<< "$fsck_out" || fail "fsck not clean"
grep -q '"schema":"dnastore.fsck_report"' fsck.json \
    || fail "fsck JSON schema marker missing"

touch "$arch/manifest.json.tmp.123.7"
fsck_out="$("$bin" archive fsck --dir "$arch")"
grep -q 'stale_temp_file' <<< "$fsck_out" || fail "stale temp not found"
"$bin" archive fsck --dir "$arch" --repair > /dev/null \
    || fail "fsck --repair"
[ ! -e "$arch/manifest.json.tmp.123.7" ] || fail "stale temp not swept"
fsck_out="$("$bin" archive fsck --dir "$arch")"
grep -q 'clean' <<< "$fsck_out" || fail "fsck not clean after repair"

# Unusable archives exit 1.
"$bin" archive fsck --dir "$work/no_such_archive" \
    && fail "fsck of missing archive must exit nonzero"

echo "cli_archive_e2e OK"
