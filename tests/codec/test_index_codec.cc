/**
 * @file
 * Tests for the nucleotide index field codec.
 */

#include <gtest/gtest.h>

#include "codec/index_codec.hh"

namespace dnastore
{
namespace
{

TEST(IndexCodec, WidthValidation)
{
    EXPECT_THROW(IndexCodec(0), std::invalid_argument);
    EXPECT_THROW(IndexCodec(33), std::invalid_argument);
    EXPECT_NO_THROW(IndexCodec(1));
    EXPECT_NO_THROW(IndexCodec(32));
}

TEST(IndexCodec, MaxIndex)
{
    EXPECT_EQ(IndexCodec(1).maxIndex(), 3u);
    EXPECT_EQ(IndexCodec(4).maxIndex(), 255u);
    EXPECT_EQ(IndexCodec(12).maxIndex(), (1ULL << 24) - 1);
    EXPECT_EQ(IndexCodec(32).maxIndex(), ~0ULL);
}

TEST(IndexCodec, RoundTripSweep)
{
    IndexCodec codec(8);
    for (std::uint64_t index : {0ULL, 1ULL, 255ULL, 4096ULL, 65535ULL}) {
        const Strand s = codec.encode(index);
        EXPECT_EQ(s.size(), 8u);
        const auto decoded = codec.decode(s);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, index);
    }
}

TEST(IndexCodec, DecodeUsesPrefixOnly)
{
    IndexCodec codec(4);
    const Strand tagged = codec.encode(200) + "GGGGTTTT";
    const auto decoded = codec.decode(tagged);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, 200u);
}

TEST(IndexCodec, DecodeFailsOnShortOrInvalid)
{
    IndexCodec codec(6);
    EXPECT_FALSE(codec.decode("ACG").has_value());
    EXPECT_FALSE(codec.decode("ACGNAC").has_value());
}

TEST(IndexCodec, EncodeOverflowThrows)
{
    IndexCodec codec(2);
    EXPECT_THROW(codec.encode(16), std::invalid_argument);
    EXPECT_NO_THROW(codec.encode(15));
}

} // namespace
} // namespace dnastore
