/**
 * @file
 * Tests for primer library design, tagging and fuzzy stripping.
 */

#include <gtest/gtest.h>

#include "codec/primer.hh"
#include "dna/distance.hh"

namespace dnastore
{
namespace
{

TEST(PrimerLibrary, DesignSatisfiesConstraints)
{
    Rng rng(1);
    PrimerConstraints cons;
    cons.length = 20;
    cons.min_hamming = 8;
    const auto lib = PrimerLibrary::design(rng, 8, cons);
    ASSERT_EQ(lib.size(), 8u);
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const Strand &p = lib.primer(i);
        EXPECT_EQ(p.size(), cons.length);
        EXPECT_GE(strand::gcContent(p), cons.min_gc);
        EXPECT_LE(strand::gcContent(p), cons.max_gc);
        EXPECT_LE(strand::maxHomopolymerRun(p), cons.max_homopolymer);
        for (std::size_t j = i + 1; j < lib.size(); ++j) {
            EXPECT_GE(hammingDistance(p, lib.primer(j)), cons.min_hamming);
            EXPECT_GE(hammingDistance(strand::reverseComplement(p),
                                      lib.primer(j)),
                      cons.min_hamming);
        }
    }
}

TEST(PrimerLibrary, DesignIsDeterministicForSeed)
{
    // The archive persists only a primer seed, not the primers: the
    // same seed must always regenerate the same library.
    const PrimerConstraints cons;
    Rng a(42);
    Rng b(42);
    const auto lib_a = PrimerLibrary::design(a, 6, cons);
    const auto lib_b = PrimerLibrary::design(b, 6, cons);
    ASSERT_EQ(lib_a.size(), lib_b.size());
    for (std::size_t i = 0; i < lib_a.size(); ++i)
        EXPECT_EQ(lib_a.primer(i), lib_b.primer(i));

    Rng c(43);
    const auto lib_c = PrimerLibrary::design(c, 6, cons);
    bool differs = false;
    for (std::size_t i = 0; i < lib_a.size(); ++i)
        differs = differs || lib_a.primer(i) != lib_c.primer(i);
    EXPECT_TRUE(differs);
}

TEST(PrimerLibrary, DesignIsPrefixStableAsLibraryGrows)
{
    // Greedy design accepts candidates in RNG order, so growing the
    // target count extends the library without moving earlier primers.
    // The archive leans on this to mint new pairs for new shards while
    // old pool molecules keep their addresses.
    const PrimerConstraints cons;
    Rng small_rng(0xa5c111e5eedULL); // archive default primer seed
    Rng large_rng(0xa5c111e5eedULL);
    const auto small_lib = PrimerLibrary::design(small_rng, 8, cons);
    const auto large_lib = PrimerLibrary::design(large_rng, 24, cons);
    ASSERT_EQ(large_lib.size(), 24u);
    for (std::size_t i = 0; i < small_lib.size(); ++i)
        EXPECT_EQ(small_lib.primer(i), large_lib.primer(i));
}

TEST(PrimerLibrary, ArchiveScaleLibraryHonoursConstraintsPairwise)
{
    // Regression for the archive's primer library (16 pairs from the
    // default seed): every primer respects the composition constraints,
    // and every pair is separated from every other — in both plain and
    // reverse-complement orientation, since a reverse read of one shard
    // must not masquerade as a forward read of another.
    const PrimerConstraints cons;
    Rng rng(0xa5c111e5eedULL);
    const auto lib = PrimerLibrary::design(rng, 32, cons);
    ASSERT_EQ(lib.size(), 32u);
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const Strand &p = lib.primer(i);
        EXPECT_EQ(p.size(), cons.length);
        EXPECT_GE(strand::gcContent(p), cons.min_gc);
        EXPECT_LE(strand::gcContent(p), cons.max_gc);
        EXPECT_LE(strand::maxHomopolymerRun(p), cons.max_homopolymer);
        const Strand rc = strand::reverseComplement(p);
        for (std::size_t j = i + 1; j < lib.size(); ++j) {
            EXPECT_GE(hammingDistance(p, lib.primer(j)), cons.min_hamming)
                << "primers " << i << " and " << j;
            // hamming(rc(a), b) == hamming(rc(b), a), so checking one
            // orientation per pair covers both.
            EXPECT_GE(hammingDistance(rc, lib.primer(j)), cons.min_hamming)
                << "revcomp of primer " << i << " vs primer " << j;
        }
    }
}

TEST(PrimerLibrary, PairForSlices)
{
    Rng rng(2);
    const auto lib = PrimerLibrary::design(rng, 4);
    const auto pair0 = lib.pairFor(0);
    const auto pair1 = lib.pairFor(1);
    EXPECT_EQ(pair0.forward, lib.primer(0));
    EXPECT_EQ(pair0.reverse, lib.primer(1));
    EXPECT_EQ(pair1.forward, lib.primer(2));
    EXPECT_EQ(pair1.reverse, lib.primer(3));
    EXPECT_EQ(lib.numPairs(), 2u);
    EXPECT_THROW(lib.pairFor(2), std::out_of_range);
}

TEST(PrimerLibrary, ConstructorRejectsInvalidPrimers)
{
    EXPECT_THROW(PrimerLibrary({"ACGN"}), std::invalid_argument);
    EXPECT_THROW(PrimerLibrary({""}), std::invalid_argument);
}

TEST(PrimerLibrary, MatchPrefixIdentifiesPrimerAndOrientation)
{
    Rng rng(3);
    const auto lib = PrimerLibrary::design(rng, 4);
    const Strand payload = strand::random(rng, 60);

    // Forward orientation: read starts with primer 2.
    const Strand fwd_read = lib.primer(2) + payload;
    const auto fwd = lib.matchPrefix(fwd_read, 3);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(fwd->primer_id, 2u);
    EXPECT_FALSE(fwd->reverse_complement);

    // Reverse orientation: read starts with revcomp(primer 3).
    const Strand rc_read =
        strand::reverseComplement(lib.primer(3)) + payload;
    const auto rc = lib.matchPrefix(rc_read, 3);
    ASSERT_TRUE(rc.has_value());
    EXPECT_EQ(rc->primer_id, 3u);
    EXPECT_TRUE(rc->reverse_complement);
}

TEST(PrimerLibrary, MatchPrefixToleratesErrors)
{
    Rng rng(4);
    const auto lib = PrimerLibrary::design(rng, 2);
    Strand read = lib.primer(0) + strand::random(rng, 40);
    read[5] = read[5] == 'A' ? 'C' : 'A'; // one substitution in primer
    read.erase(10, 1);                    // one deletion in primer
    const auto match = lib.matchPrefix(read, 4);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->primer_id, 0u);
    EXPECT_LE(match->distance, 4u);
}

TEST(PrimerLibrary, MatchPrefixRejectsGarbage)
{
    Rng rng(5);
    const auto lib = PrimerLibrary::design(rng, 2);
    // A random read is unlikely to be within edit distance 2 of a
    // designed primer.
    const auto match = lib.matchPrefix(strand::random(rng, 60), 2);
    EXPECT_FALSE(match.has_value());
}

TEST(Primers, AttachComposesLayout)
{
    const PrimerPair pair{"AAAACCCC", "GGGGTTTT"};
    const Strand tagged = attachPrimers(pair, "ACGT");
    EXPECT_EQ(tagged, "AAAACCCCACGTGGGGTTTT");
}

TEST(Primers, StripRecoversPayloadExactly)
{
    Rng rng(6);
    const auto lib = PrimerLibrary::design(rng, 2);
    const auto pair = lib.pairFor(0);
    const Strand payload = strand::random(rng, 80);
    const auto stripped = stripPrimers(pair, attachPrimers(pair, payload), 3);
    ASSERT_TRUE(stripped.has_value());
    EXPECT_EQ(*stripped, payload);
}

TEST(Primers, StripToleratesPrimerErrors)
{
    Rng rng(7);
    const auto lib = PrimerLibrary::design(rng, 2);
    const auto pair = lib.pairFor(0);
    const Strand payload = strand::random(rng, 80);
    Strand tagged = attachPrimers(pair, payload);
    tagged[3] = tagged[3] == 'A' ? 'G' : 'A';      // error in fwd primer
    tagged.erase(tagged.size() - 5, 1);            // error in rev primer
    const auto stripped = stripPrimers(pair, tagged, 4);
    ASSERT_TRUE(stripped.has_value());
    // The payload must survive intact (errors were in the primers).
    EXPECT_EQ(*stripped, payload);
}

TEST(Primers, StripRejectsForeignStrand)
{
    Rng rng(8);
    const auto lib = PrimerLibrary::design(rng, 4);
    const auto pair = lib.pairFor(0);
    const auto other = lib.pairFor(1);
    const Strand tagged = attachPrimers(other, strand::random(rng, 80));
    EXPECT_FALSE(stripPrimers(pair, tagged, 3).has_value());
}

TEST(Primers, StripRejectsTooShortStrand)
{
    const PrimerPair pair{"AAAACCCCGGGGTTTTACGT", "TTTTGGGGCCCCAAAATGCA"};
    EXPECT_FALSE(stripPrimers(pair, "ACGT", 3).has_value());
}

} // namespace
} // namespace dnastore
