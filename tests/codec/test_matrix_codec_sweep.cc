/**
 * @file
 * Property sweep for the matrix codec across geometries: every
 * (payload, rs_n, rs_k, scheme) combination must round-trip losslessly,
 * respect its strand-count arithmetic, and survive erasures up to the
 * RS budget.
 */

#include <gtest/gtest.h>

#include "codec/matrix_codec.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

struct Geometry
{
    std::size_t payload_nt;
    std::size_t rs_n;
    std::size_t rs_k;
    LayoutScheme scheme;
};

void
PrintTo(const Geometry &g, std::ostream *os)
{
    *os << "payload=" << g.payload_nt << " rs=(" << g.rs_n << ","
        << g.rs_k << ") scheme=" << layoutSchemeName(g.scheme);
}

class GeometrySweepTest : public ::testing::TestWithParam<Geometry>
{
  protected:
    MatrixCodecConfig
    config() const
    {
        const Geometry g = GetParam();
        MatrixCodecConfig cfg;
        cfg.payload_nt = g.payload_nt;
        cfg.index_nt = 10;
        cfg.rs_n = g.rs_n;
        cfg.rs_k = g.rs_k;
        cfg.scheme = g.scheme;
        return cfg;
    }
};

TEST_P(GeometrySweepTest, LosslessRoundTrip)
{
    const auto cfg = config();
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    Rng rng(cfg.payload_nt * 1000 + cfg.rs_n);
    std::vector<std::uint8_t> data(
        1 + rng.below(3 * cfg.unitDataBytes()));
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    const auto strands = encoder.encode(data);
    EXPECT_EQ(strands.size() % cfg.rs_n, 0u);
    for (const auto &s : strands) {
        EXPECT_EQ(s.size(), cfg.strandLength());
        EXPECT_TRUE(strand::isValid(s));
    }
    const auto report = decoder.decode(strands);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
}

TEST_P(GeometrySweepTest, SurvivesErasuresUpToBudget)
{
    const auto cfg = config();
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    Rng rng(cfg.payload_nt * 7 + cfg.rs_k);
    std::vector<std::uint8_t> data(cfg.unitDataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    auto strands = encoder.encode(data);
    const std::size_t units = encoder.unitsForSize(data.size());
    // Drop exactly the erasure budget from the first unit.
    const std::size_t parity = cfg.rs_n - cfg.rs_k;
    std::vector<Strand> kept;
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < strands.size(); ++i) {
        if (i < cfg.rs_n && dropped < parity && i % 2 == 0) {
            ++dropped;
            continue;
        }
        kept.push_back(strands[i]);
    }
    ASSERT_EQ(dropped, std::min(parity, (cfg.rs_n + 1) / 2));
    const auto report = decoder.decode(kept, units);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
}

TEST_P(GeometrySweepTest, OneMoreErasureThanBudgetFailsLoudly)
{
    const auto cfg = config();
    if (cfg.rs_n - cfg.rs_k + 1 > cfg.rs_n / 2)
        GTEST_SKIP() << "cannot drop that many even-indexed columns";
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    Rng rng(cfg.payload_nt + cfg.rs_k * 3);
    std::vector<std::uint8_t> data(cfg.unitDataBytes() / 2);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    auto strands = encoder.encode(data);
    // Drop parity + 1 distinct columns of unit 0.
    const std::size_t to_drop = cfg.rs_n - cfg.rs_k + 1;
    std::vector<Strand> kept(strands.begin() + static_cast<long>(to_drop),
                             strands.end());
    const auto report =
        decoder.decode(kept, encoder.unitsForSize(data.size()));
    // Erasures beyond the budget must surface as failed rows; with all
    // rows of unit 0 unrecoverable the CRC check fails.
    EXPECT_FALSE(report.ok);
    EXPECT_GT(report.failed_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweepTest,
    ::testing::Values(
        Geometry{48, 24, 16, LayoutScheme::Baseline},
        Geometry{48, 24, 16, LayoutScheme::Gini},
        Geometry{48, 24, 16, LayoutScheme::DNAMapper},
        Geometry{120, 60, 40, LayoutScheme::Baseline},
        Geometry{120, 60, 40, LayoutScheme::Gini},
        Geometry{120, 255, 223, LayoutScheme::Baseline},
        Geometry{120, 255, 223, LayoutScheme::Gini},
        Geometry{32, 96, 64, LayoutScheme::Baseline},
        Geometry{32, 96, 64, LayoutScheme::Gini},
        Geometry{200, 30, 10, LayoutScheme::Baseline},
        Geometry{200, 30, 10, LayoutScheme::Gini},
        Geometry{96, 12, 4, LayoutScheme::Baseline},
        Geometry{96, 12, 4, LayoutScheme::DNAMapper}));

} // namespace
} // namespace dnastore
