/**
 * @file
 * Tests for the XOR keystream randomizer.
 */

#include <gtest/gtest.h>

#include "codec/randomizer.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(Randomizer, IsInvolution)
{
    Rng rng(1);
    Randomizer r(42);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> data(rng.below(100));
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        const auto original = data;
        r.apply(data);
        r.apply(data);
        EXPECT_EQ(data, original);
    }
}

TEST(Randomizer, IsDeterministicPerSeed)
{
    std::vector<std::uint8_t> a(64, 0), b(64, 0);
    Randomizer(7).apply(a);
    Randomizer(7).apply(b);
    EXPECT_EQ(a, b);
}

TEST(Randomizer, DifferentSeedsDiffer)
{
    std::vector<std::uint8_t> a(64, 0), b(64, 0);
    Randomizer(1).apply(a);
    Randomizer(2).apply(b);
    EXPECT_NE(a, b);
}

TEST(Randomizer, HandlesOddLengths)
{
    for (std::size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 17u}) {
        std::vector<std::uint8_t> data(len, 0xAA);
        const auto original = data;
        Randomizer r(3);
        r.apply(data);
        r.apply(data);
        EXPECT_EQ(data, original) << "len=" << len;
    }
}

TEST(Randomizer, BreaksHomopolymers)
{
    // All-zero data maps to poly-A strands; randomization must bring
    // the maximum homopolymer run down to something sequencer-friendly.
    std::vector<std::uint8_t> data(2000, 0);
    const Strand before = strand::fromBytes(data);
    EXPECT_EQ(strand::maxHomopolymerRun(before), before.size());

    Randomizer r(99);
    r.apply(data);
    const Strand after = strand::fromBytes(data);
    EXPECT_LE(strand::maxHomopolymerRun(after), 12u);
    EXPECT_NEAR(strand::gcContent(after), 0.5, 0.05);
}

TEST(Randomizer, AppliedIsFunctionalForm)
{
    Randomizer r(5);
    std::vector<std::uint8_t> data = {1, 2, 3};
    auto copy = data;
    r.apply(copy);
    EXPECT_EQ(r.applied(data), copy);
}

} // namespace
} // namespace dnastore
