/**
 * @file
 * Tests for the matrix codec: Baseline, Gini and DNAMapper layouts,
 * damage tolerance, header integrity and unit inference.
 */

#include <gtest/gtest.h>

#include <set>

#include "codec/matrix_codec.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

MatrixCodecConfig
smallConfig(LayoutScheme scheme)
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 48; // 12 rows
    cfg.index_nt = 8;
    cfg.rs_n = 24;
    cfg.rs_k = 16;
    cfg.scheme = scheme;
    return cfg;
}

std::vector<std::uint8_t>
randomData(Rng &rng, std::size_t size)
{
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

TEST(MatrixCodecConfig, Validation)
{
    MatrixCodecConfig cfg = smallConfig(LayoutScheme::Baseline);
    EXPECT_NO_THROW(cfg.validate());

    auto bad = cfg;
    bad.payload_nt = 50; // not a multiple of 4
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = cfg;
    bad.rs_k = bad.rs_n;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = cfg;
    bad.rs_n = 300;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = cfg;
    bad.index_nt = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = cfg;
    bad.row_reliability_order = {0, 1}; // wrong size
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = cfg;
    bad.row_reliability_order.assign(bad.bytesPerMolecule(), 0); // dup
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(MatrixCodecConfig, DerivedGeometry)
{
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    EXPECT_EQ(cfg.bytesPerMolecule(), 12u);
    EXPECT_EQ(cfg.strandLength(), 56u);
    EXPECT_EQ(cfg.unitDataBytes(), 16u * 12u);
}

TEST(MatrixCodecConfig, DefaultRowOrderPrefersEdges)
{
    auto cfg = smallConfig(LayoutScheme::DNAMapper);
    const auto order = cfg.effectiveRowOrder();
    ASSERT_EQ(order.size(), 12u);
    // First entries are edge rows, last entries are middle rows.
    EXPECT_TRUE(order.front() == 0 || order.front() == 11);
    EXPECT_TRUE(order.back() == 5 || order.back() == 6);
    std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 12u);
}

class SchemeTest : public ::testing::TestWithParam<LayoutScheme>
{
};

TEST_P(SchemeTest, LosslessRoundTrip)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
    for (std::size_t size : {0u, 1u, 100u, 1000u, 5000u}) {
        auto cfg = smallConfig(GetParam());
        const auto data = randomData(rng, size);
        if (GetParam() == LayoutScheme::DNAMapper) {
            cfg.priorities.resize(size);
            for (std::size_t i = 0; i < size; ++i)
                cfg.priorities[i] = static_cast<std::uint32_t>(i % 3);
        }
        MatrixEncoder encoder(cfg);
        MatrixDecoder decoder(cfg);
        const auto strands = encoder.encode(data);
        EXPECT_EQ(strands.size(),
                  encoder.unitsForSize(size) * cfg.rs_n);
        for (const auto &s : strands)
            EXPECT_EQ(s.size(), cfg.strandLength());
        const auto report = decoder.decode(strands);
        EXPECT_TRUE(report.ok) << "size=" << size;
        EXPECT_EQ(report.data, data);
        EXPECT_EQ(report.failed_rows, 0u);
    }
}

TEST_P(SchemeTest, SurvivesDroppedAndCorruptedStrands)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
    auto cfg = smallConfig(GetParam());
    cfg.rs_k = 14; // extra parity so random damage stays within budget
    const auto data = randomData(rng, 3000);
    if (GetParam() == LayoutScheme::DNAMapper) {
        cfg.priorities.assign(data.size(), 0);
    }
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto strands = encoder.encode(data);

    std::vector<Strand> damaged;
    for (const auto &s : strands) {
        if (rng.chance(0.08))
            continue; // molecule lost -> erasure
        Strand t = s;
        if (rng.chance(0.05)) {
            const std::size_t pos =
                cfg.index_nt + rng.below(cfg.payload_nt);
            t[pos] = t[pos] == 'A' ? 'C' : 'A';
        }
        damaged.push_back(t);
    }
    const auto report =
        decoder.decode(damaged, encoder.unitsForSize(data.size()));
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
    EXPECT_GT(report.erased_columns, 0u);
}

TEST_P(SchemeTest, DuplicateStrandsResolvedByMajority)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    auto cfg = smallConfig(GetParam());
    const auto data = randomData(rng, 500);
    if (GetParam() == LayoutScheme::DNAMapper)
        cfg.priorities.assign(data.size(), 0);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto strands = encoder.encode(data);

    // Duplicate every strand 3x; corrupt one copy of each.
    std::vector<Strand> noisy;
    for (const auto &s : strands) {
        noisy.push_back(s);
        noisy.push_back(s);
        Strand bad = s;
        bad[cfg.index_nt + 1] = bad[cfg.index_nt + 1] == 'G' ? 'T' : 'G';
        noisy.push_back(bad);
    }
    const auto report = decoder.decode(noisy);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
    EXPECT_GT(report.conflicting_strands, 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, SchemeTest,
                         ::testing::Values(LayoutScheme::Baseline,
                                           LayoutScheme::Gini,
                                           LayoutScheme::DNAMapper));

TEST(MatrixCodec, MalformedStrandsAreCountedNotFatal)
{
    Rng rng(1);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 400);
    auto strands = encoder.encode(data);
    strands.push_back("ACGT");                        // wrong length
    strands.push_back(Strand(cfg.strandLength(), 'A')); // stray index 0 dup
    const auto report =
        decoder.decode(strands, encoder.unitsForSize(data.size()));
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
    EXPECT_GE(report.malformed_strands, 1u);
}

TEST(MatrixCodec, TotalLossReportsFailure)
{
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixDecoder decoder(cfg);
    const auto report = decoder.decode({}, 0);
    EXPECT_FALSE(report.ok);
    EXPECT_TRUE(report.data.empty());
}

TEST(MatrixCodec, MassiveDamageFailsGracefully)
{
    Rng rng(2);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 2000);
    auto strands = encoder.encode(data);
    // Keep only a quarter of the molecules: far beyond erasure budget.
    strands.resize(strands.size() / 4);
    const auto report =
        decoder.decode(strands, encoder.unitsForSize(data.size()));
    EXPECT_FALSE(report.ok);
    EXPECT_GT(report.failed_rows, 0u);
}

TEST(MatrixCodec, UnitInferenceMatchesExplicit)
{
    Rng rng(3);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 2500); // multiple units
    const auto strands = encoder.encode(data);
    const auto inferred = decoder.decode(strands, 0);
    const auto explicit_units =
        decoder.decode(strands, encoder.unitsForSize(data.size()));
    EXPECT_TRUE(inferred.ok);
    EXPECT_TRUE(explicit_units.ok);
    EXPECT_EQ(inferred.data, explicit_units.data);
}

TEST(MatrixCodec, CorruptIndexCannotInflateFile)
{
    Rng rng(4);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 1000);
    auto strands = encoder.encode(data);
    // One strand claims a ridiculous index (e.g. unit 1000).
    IndexCodec index_codec(cfg.index_nt);
    strands.push_back(index_codec.encode(1000 * cfg.rs_n + 5) +
                      Strand(cfg.payload_nt, 'A'));
    const auto report = decoder.decode(strands, 0);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.data, data);
}

TEST(MatrixCodec, DnaMapperPrioritiesMustMatchLength)
{
    auto cfg = smallConfig(LayoutScheme::DNAMapper);
    cfg.priorities = {0, 1, 2};
    MatrixEncoder encoder(cfg);
    EXPECT_THROW(encoder.encode(std::vector<std::uint8_t>(10)),
                 std::invalid_argument);
}

TEST(MatrixCodec, DnaMapperPermutationIsBijection)
{
    auto cfg = smallConfig(LayoutScheme::DNAMapper);
    std::vector<std::uint32_t> priorities(500);
    for (std::size_t i = 0; i < priorities.size(); ++i)
        priorities[i] = static_cast<std::uint32_t>((i * 7) % 5);
    const std::size_t stream = 3 * cfg.unitDataBytes();
    const auto perm = detail::dnaMapperPermutation(stream, 20, 500,
                                                   priorities, cfg);
    ASSERT_EQ(perm.size(), stream);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), stream);
}

TEST(MatrixCodec, DnaMapperPlacesHeaderInMostReliableSlots)
{
    auto cfg = smallConfig(LayoutScheme::DNAMapper);
    const std::size_t rows = cfg.bytesPerMolecule();
    const auto order = cfg.effectiveRowOrder();
    const std::size_t stream = cfg.unitDataBytes();
    const auto perm =
        detail::dnaMapperPermutation(stream, 20, stream - 20 - 10, {}, cfg);
    // Find where header positions (< 20) landed; they must occupy slots
    // whose row is among the most reliable rows.
    std::set<std::size_t> best_rows(order.begin(),
                                    order.begin() + 4);
    std::size_t header_in_best = 0;
    for (std::size_t slot = 0; slot < perm.size(); ++slot) {
        if (perm[slot] < 20 && best_rows.count(slot % rows))
            ++header_in_best;
    }
    EXPECT_GE(header_in_best, 18u); // nearly all header bytes
}

TEST(MatrixCodec, HeaderReplicationSurvivesOneRuinedUnit)
{
    // The header is replicated per unit and majority-voted: butchering
    // every row of one unit must not take the whole file down with it.
    Rng rng(6);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 3 * cfg.rs_k * 12); // several units
    auto strands = encoder.encode(data);
    const std::size_t units = encoder.unitsForSize(data.size());
    ASSERT_GE(units, 3u);

    // Ruin unit 0 completely: garbage payloads, valid indexes.
    for (std::size_t c = 0; c < cfg.rs_n; ++c) {
        Strand &s = strands[c];
        for (std::size_t i = cfg.index_nt; i < s.size(); ++i)
            s[i] = "ACGT"[rng.below(4)];
    }
    const auto report = decoder.decode(strands, units);
    // Unit 0's data is lost (failed rows), but the header majority from
    // the other units still frames the file: data has the right size
    // and the tail units are intact.
    EXPECT_FALSE(report.ok); // CRC fails: unit 0 contents are garbage
    ASSERT_EQ(report.data.size(), data.size());
    const std::size_t unit_payload = cfg.unitDataBytes() - 20;
    for (std::size_t i = unit_payload; i < data.size(); ++i)
        EXPECT_EQ(report.data[i], data[i]) << "tail byte " << i;
    EXPECT_GT(report.failed_rows, 0u);
}

TEST(MatrixCodec, FailedRowIdsMatchCount)
{
    Rng rng(7);
    const auto cfg = smallConfig(LayoutScheme::Baseline);
    MatrixEncoder encoder(cfg);
    MatrixDecoder decoder(cfg);
    const auto data = randomData(rng, 1000);
    auto strands = encoder.encode(data);
    strands.resize(strands.size() / 3); // massive loss
    const auto report =
        decoder.decode(strands, encoder.unitsForSize(data.size()));
    EXPECT_EQ(report.failed_row_ids.size(), report.failed_rows);
    for (const auto &[unit, row] : report.failed_row_ids) {
        EXPECT_LT(unit, encoder.unitsForSize(data.size()));
        EXPECT_LT(row, cfg.bytesPerMolecule());
    }
}

TEST(MatrixCodec, UnitTooSmallForHeaderThrows)
{
    MatrixCodecConfig cfg;
    cfg.payload_nt = 8; // 2 rows
    cfg.index_nt = 4;
    cfg.rs_n = 8;
    cfg.rs_k = 4; // unit data = 8 bytes < 20-byte header
    EXPECT_THROW(MatrixEncoder{cfg}, std::invalid_argument);
    EXPECT_THROW(MatrixDecoder{cfg}, std::invalid_argument);
}

TEST(MatrixCodec, GiniSpreadsColumnDamageAcrossRows)
{
    // Corrupt one full physical row (the same payload position in every
    // molecule).  Baseline concentrates the damage into one codeword per
    // unit (12 symbol errors in a single row); Gini spreads it across
    // all rows (~1 error each), which RS can absorb with far less
    // margin.
    Rng rng(5);
    MatrixCodecConfig cfg = smallConfig(LayoutScheme::Gini);
    cfg.rs_k = 20; // parity 4: can fix 2 errors/row, not 12
    const auto data = randomData(rng, 1000);

    MatrixCodecConfig base_cfg = cfg;
    base_cfg.scheme = LayoutScheme::Baseline;

    for (bool gini : {false, true}) {
        const auto &use_cfg = gini ? cfg : base_cfg;
        MatrixEncoder encoder(use_cfg);
        MatrixDecoder decoder(use_cfg);
        auto strands = encoder.encode(data);
        // Hit physical row 6 (payload byte 6) of every molecule: flip
        // its 4 nucleotides.
        for (auto &s : strands) {
            for (std::size_t nt = 0; nt < 4; ++nt) {
                const std::size_t pos = use_cfg.index_nt + 6 * 4 + nt;
                s[pos] = s[pos] == 'A' ? 'C' : 'A';
            }
        }
        const auto report =
            decoder.decode(strands, encoder.unitsForSize(data.size()));
        if (gini) {
            EXPECT_TRUE(report.ok) << "gini should absorb row damage";
            EXPECT_EQ(report.data, data);
        } else {
            EXPECT_FALSE(report.ok)
                << "baseline concentrates row damage beyond RS capacity";
        }
    }
}

} // namespace
} // namespace dnastore
