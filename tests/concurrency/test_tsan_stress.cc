/**
 * @file
 * Thread-safety stress tests.  These run in every build, but their real
 * purpose is a ThreadSanitizer-instrumented build
 * (-DDNASTORE_SANITIZE=thread), where they drive the three concurrent
 * surfaces of the toolkit hard enough for TSan to observe every
 * happens-before edge: ThreadPool::parallelChunks/submit, the
 * Rashtchian clusterer's parallel signature + bucket-merge path, and
 * multiple Pipeline::run instances sharing const modules.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hh"
#include "clustering/clusterer.hh"
#include "clustering/greedy_clusterer.hh"
#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace dnastore
{
namespace
{

TEST(TsanStress, ParallelChunksAccumulate)
{
    ThreadPool pool(4);
    constexpr std::size_t kItems = 200000;
    constexpr int kRounds = 5;
    for (int round = 0; round < kRounds; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelChunks(0, kItems, [&](std::size_t lo, std::size_t hi) {
            std::uint64_t local = 0;
            for (std::size_t i = lo; i < hi; ++i)
                local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(),
                  static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
    }
}

TEST(TsanStress, ParallelForWritesDisjointSlots)
{
    ThreadPool pool(4);
    std::vector<std::uint32_t> out(50000, 0);
    pool.parallelFor(0, out.size(), [&](std::size_t i) {
        out[i] = static_cast<std::uint32_t>(i * 2654435761u);
    });
    for (std::size_t i = 0; i < out.size(); i += 4999)
        EXPECT_EQ(out[i], static_cast<std::uint32_t>(i * 2654435761u));
}

TEST(TsanStress, ConcurrentExternalSubmitters)
{
    ThreadPool pool(3);
    constexpr int kSubmitters = 4;
    constexpr int kTasksEach = 500;
    std::atomic<int> executed{0};
    {
        std::vector<std::thread> submitters;
        std::vector<std::vector<std::future<void>>> futures(kSubmitters);
        submitters.reserve(kSubmitters);
        for (int t = 0; t < kSubmitters; ++t) {
            submitters.emplace_back([&pool, &futures, &executed, t] {
                futures[static_cast<std::size_t>(t)].reserve(kTasksEach);
                for (int i = 0; i < kTasksEach; ++i) {
                    futures[static_cast<std::size_t>(t)].push_back(
                        pool.submit([&executed] {
                            executed.fetch_add(1,
                                               std::memory_order_relaxed);
                        }));
                }
            });
        }
        for (auto &submitter : submitters)
            submitter.join();
        for (auto &list : futures)
            for (auto &future : list)
                future.get();
    }
    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

std::vector<Strand>
noisyReads(Rng &rng, std::size_t num_strands, std::size_t copies)
{
    std::vector<Strand> reads;
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    std::vector<Strand> originals;
    for (std::size_t s = 0; s < num_strands; ++s)
        originals.push_back(strand::random(rng, 120));
    for (std::size_t s = 0; s < num_strands; ++s)
        for (std::size_t c = 0; c < copies; ++c)
            reads.push_back(channel.transmit(originals[s], rng));
    return reads;
}

TEST(TsanStress, RashtchianParallelSignaturePathMatchesSequential)
{
    Rng rng(4242);
    const auto reads = noisyReads(rng, 60, 8);

    RashtchianClustererConfig sequential_cfg;
    sequential_cfg.rounds = 12;
    sequential_cfg.num_threads = 1;
    RashtchianClusterer sequential(sequential_cfg);
    const Clustering expected = sequential.cluster(reads);

    RashtchianClustererConfig parallel_cfg = sequential_cfg;
    parallel_cfg.num_threads = 4;
    RashtchianClusterer parallel(parallel_cfg);
    const Clustering actual = parallel.cluster(reads);

    // Merge order may differ across schedules, but the merged pairs are
    // identical, so the final partition must be too.
    EXPECT_EQ(actual.numClusters(), expected.numClusters());
}

TEST(TsanStress, ArchiveGetAndSaveShareOneThreadPool)
{
    // Concurrent const gets on archive A (racing on the lazy primer
    // library design now serialised by the annotated Mutex) while
    // archive B puts — and therefore saves — on the same shared pool.
    // Mutating operations stay externally serialised per archive: all
    // of B's puts run inside one task, in order.
    namespace fs = std::filesystem;
    const fs::path base = fs::path(::testing::TempDir()) / "tsan_archive";
    fs::remove_all(base);

    archive::ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 256;

    Rng rng(90125);
    std::vector<std::uint8_t> payload(300);
    for (auto &b : payload)
        b = static_cast<std::uint8_t>(rng.below(256));

    auto created_a = archive::Archive::create((base / "a").string(), params);
    ASSERT_TRUE(created_a.ok()) << created_a.error;
    archive::Archive &a = *created_a.archive;
    ASSERT_TRUE(a.put("obj", payload).ok());

    auto created_b = archive::Archive::create((base / "b").string(), params);
    ASSERT_TRUE(created_b.ok()) << created_b.error;
    archive::Archive &b = *created_b.archive;

    {
        ThreadPool pool(4);
        std::vector<std::future<bool>> outcomes;
        for (int reader = 0; reader < 4; ++reader) {
            outcomes.push_back(pool.submit(
                [&a, &payload] { return a.get("obj").data == payload; }));
        }
        outcomes.push_back(pool.submit([&b, &payload] {
            for (int i = 0; i < 3; ++i) {
                if (!b.put("obj" + std::to_string(i), payload).ok())
                    return false;
            }
            return true;
        }));
        for (auto &outcome : outcomes)
            EXPECT_TRUE(outcome.get());
    }
    EXPECT_EQ(b.objects().size(), 3u);
    fs::remove_all(base);
}

TEST(TsanStress, ConcurrentPipelineRunInstances)
{
    MatrixCodecConfig codec_cfg;
    codec_cfg.payload_nt = 80;
    codec_cfg.index_nt = 10;
    codec_cfg.rs_n = 40;
    codec_cfg.rs_k = 28;

    const MatrixEncoder encoder(codec_cfg);
    const MatrixDecoder decoder(codec_cfg);
    const IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.01));
    const NwConsensusReconstructor reconstructor;

    constexpr int kPipelines = 4;
    std::vector<int> ok(kPipelines, 0);
    std::vector<std::thread> runners;
    runners.reserve(kPipelines);
    for (int t = 0; t < kPipelines; ++t) {
        runners.emplace_back([&, t] {
            // Clusterers carry per-run statistics, so each thread owns
            // one; every other module is shared and const.
            GreedyOnlineClusterer clusterer{GreedyClustererConfig{}};
            PipelineModules mods;
            mods.encoder = &encoder;
            mods.decoder = &decoder;
            mods.channel = &channel;
            mods.clusterer = &clusterer;
            mods.reconstructor = &reconstructor;

            PipelineConfig cfg;
            cfg.coverage = CoverageModel(8.0);
            cfg.num_threads = 2; // nested pool inside each run
            cfg.seed = 0xbeef00ULL + static_cast<std::uint64_t>(t);

            Rng rng(77 + static_cast<std::uint64_t>(t));
            std::vector<std::uint8_t> data(400);
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.below(256));

            Pipeline pipeline(mods, cfg);
            const PipelineResult result = pipeline.run(data);
            ok[static_cast<std::size_t>(t)] = result.report.ok ? 1 : 0;
        });
    }
    for (auto &runner : runners)
        runner.join();
    for (int t = 0; t < kPipelines; ++t)
        EXPECT_EQ(ok[static_cast<std::size_t>(t)], 1) << "pipeline " << t;
}

} // namespace
} // namespace dnastore
