/**
 * @file
 * `archive fsck` scrub/repair (archive/fsck.hh) against the full crash
 * taxonomy.  The two signature states a kill can leave — pool ahead of
 * manifest, and an orphaned atomic-write staging file — are produced by
 * REAL injected crashes (death-test children killed at armed crash
 * points), then detected and repaired by fsck in the parent.  The rest
 * of the taxonomy (count mismatches, malformed records, missing or
 * corrupt files, undecodable shards under --deep) is staged by hand.
 */

#include "archive/fsck.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "archive/archive.hh"
#include "obs/crashpoint.hh"
#include "obs/report.hh"
#include "obs/report.hh"
#include "util/random.hh"

using namespace dnastore;
using namespace dnastore::archive;
namespace crash = dnastore::obs::crash;

namespace
{

std::vector<std::uint8_t>
patternBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

ArchiveParams
smallParams()
{
    ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 256;
    return params;
}

class FsckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        crash::reset();
        dir_ = std::filesystem::path(::testing::TempDir()) /
               ("fsck_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        crash::reset();
        std::filesystem::remove_all(dir_);
    }

    std::string dir() const { return dir_.string(); }

    std::string path(const char *name) const
    {
        return (dir_ / name).string();
    }

    /** First finding of the given kind, or nullptr. */
    static const FsckFinding *
    findKind(const FsckReport &report, FsckFindingKind kind)
    {
        for (const FsckFinding &finding : report.findings)
            if (finding.kind == kind)
                return &finding;
        return nullptr;
    }

    std::filesystem::path dir_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
spew(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

} // namespace

TEST_F(FsckTest, CleanArchiveHasNoFindings)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("a", patternBytes(300, 1)).ok());
    ASSERT_TRUE(created.archive->put("b", patternBytes(90, 2)).ok());

    const FsckReport report = fsckArchive(dir());
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.healthy());
    EXPECT_EQ(report.status, ArchiveStatus::Ok);
    EXPECT_EQ(report.objects, 2u);
    EXPECT_EQ(report.shards, 3u); // 300B at 256B/shard = 2, plus 1.
    EXPECT_GT(report.pool_records, 0u);
    EXPECT_EQ(report.repaired_count, 0u);
}

TEST_F(FsckTest, InjectedCrashBetweenPoolAndManifestIsRepaired)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;
    const auto data_a = patternBytes(200, 1);
    ASSERT_TRUE(tube.put("a", data_a).ok());

    // Real injected crash: the death-test child arms the point between
    // the pool commit and the manifest commit, so it dies having
    // published B's strands into pool.fasta while manifest.json still
    // describes only A.
    const auto crashingPut = [&tube]() {
        (void)crash::configure("archive.save.between=kill");
        (void)tube.put("b", patternBytes(150, 2), 1);
    };
    EXPECT_EXIT(crashingPut(),
                ::testing::ExitedWithCode(crash::kCrashExitCode), "");

    // Detect: orphaned pool records under pair ids the manifest never
    // references.  Warning severity — the archive is fully usable.
    const FsckReport before = fsckArchive(dir());
    const FsckFinding *orphan =
        findKind(before, FsckFindingKind::OrphanPoolRecord);
    ASSERT_NE(orphan, nullptr);
    EXPECT_TRUE(orphan->repairable);
    EXPECT_FALSE(orphan->repaired);
    EXPECT_TRUE(before.healthy());
    EXPECT_FALSE(before.clean());

    // Repair drops the orphans; a rescan comes back byte-clean.
    FsckOptions repair;
    repair.repair = true;
    const FsckReport repaired = fsckArchive(dir(), repair);
    EXPECT_GT(repaired.repaired_count, 0u);
    EXPECT_TRUE(fsckArchive(dir()).clean());

    // And the committed object is still byte-exact.
    auto reopened = Archive::open(dir());
    ASSERT_TRUE(reopened.ok()) << reopened.error;
    EXPECT_EQ(reopened.archive->objects().size(), 1u);
    const GetResult got = reopened.archive->get("a");
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, data_a);
}

TEST_F(FsckTest, InjectedMidWriteCrashLeavesStagingFileFsckSweeps)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;

    // Real injected crash: a report writer dies halfway through its
    // staging write, orphaning a "<base>.tmp.<pid>.<n>" file.
    const std::string target = path("run_report.json");
    const auto crashingWrite = [&target]() {
        (void)crash::configure("obs.write.body=short");
        (void)dnastore::obs::writeTextFile(target,
                                           std::string(4096, 'x'));
    };
    EXPECT_EXIT(crashingWrite(),
                ::testing::ExitedWithCode(crash::kCrashExitCode), "");
    EXPECT_FALSE(std::filesystem::exists(target));

    const FsckReport before = fsckArchive(dir());
    const FsckFinding *stale =
        findKind(before, FsckFindingKind::StaleTempFile);
    ASSERT_NE(stale, nullptr);
    EXPECT_TRUE(stale->repairable);

    FsckOptions repair;
    repair.repair = true;
    const FsckReport repaired = fsckArchive(dir(), repair);
    const FsckFinding *swept =
        findKind(repaired, FsckFindingKind::StaleTempFile);
    ASSERT_NE(swept, nullptr);
    EXPECT_TRUE(swept->repaired);
    EXPECT_TRUE(fsckArchive(dir()).clean());
}

TEST_F(FsckTest, StaleStagingFileNamePatternIsExact)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;

    // Only the writer's exact "<base>.tmp.<pid>.<counter>" pattern is
    // swept; user files that merely contain ".tmp" are not fsck's to
    // delete.
    spew(path("manifest.json.tmp.123.7"), "half a manifest");
    spew(path("notes.tmp"), "user file");
    spew(path("data.tmp.abc.1"), "user file");

    FsckOptions repair;
    repair.repair = true;
    const FsckReport report = fsckArchive(dir(), repair);
    EXPECT_EQ(report.repaired_count, 1u);
    EXPECT_FALSE(
        std::filesystem::exists(path("manifest.json.tmp.123.7")));
    EXPECT_TRUE(std::filesystem::exists(path("notes.tmp")));
    EXPECT_TRUE(std::filesystem::exists(path("data.tmp.abc.1")));
}

TEST_F(FsckTest, MalformedPoolRecordDroppedByRepair)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    const auto data = patternBytes(120, 3);
    ASSERT_TRUE(created.archive->put("a", data).ok());

    spew(path("pool.fasta"),
         slurp(path("pool.fasta")) + ">junk no pair here\nACGTACGT\n");

    const FsckReport before = fsckArchive(dir());
    const FsckFinding *malformed =
        findKind(before, FsckFindingKind::MalformedPoolRecord);
    ASSERT_NE(malformed, nullptr);
    EXPECT_TRUE(malformed->repairable);
    EXPECT_TRUE(before.healthy());

    FsckOptions repair;
    repair.repair = true;
    (void)fsckArchive(dir(), repair);
    EXPECT_TRUE(fsckArchive(dir()).clean());

    auto reopened = Archive::open(dir());
    ASSERT_TRUE(reopened.ok()) << reopened.error;
    const GetResult got = reopened.archive->get("a");
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, data);
}

TEST_F(FsckTest, MissingStrandsAreAnUnrepairableError)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("a", patternBytes(120, 4)).ok());

    // Drop one of the object's own records (pair 1; the trailing pair-0
    // records hold the DNA manifest copy, which is not count-checked):
    // that pair now holds one strand fewer than its manifest entry
    // promises — data loss fsck must refuse to "repair".
    const std::string pool = slurp(path("pool.fasta"));
    const std::size_t at = pool.find("pair=1\n");
    ASSERT_NE(at, std::string::npos);
    const std::size_t start = pool.rfind('>', at);
    ASSERT_NE(start, std::string::npos);
    const std::size_t next = pool.find('>', at);
    spew(path("pool.fasta"),
         pool.substr(0, start) +
             (next == std::string::npos ? "" : pool.substr(next)));

    const FsckReport report = fsckArchive(dir());
    const FsckFinding *mismatch =
        findKind(report, FsckFindingKind::StrandCountMismatch);
    ASSERT_NE(mismatch, nullptr)
        << fsckReportJson(report, dir(), FsckOptions{});
    EXPECT_EQ(mismatch->severity, FsckSeverity::Error);
    EXPECT_FALSE(mismatch->repairable);
    EXPECT_FALSE(report.healthy());
    EXPECT_EQ(report.status, ArchiveStatus::CorruptPool);
}

TEST_F(FsckTest, MissingAndCorruptManifestsAreErrors)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;

    const std::string manifest = slurp(path("manifest.json"));
    std::filesystem::remove(path("manifest.json"));
    const FsckReport missing = fsckArchive(dir());
    EXPECT_NE(findKind(missing, FsckFindingKind::MissingManifest),
              nullptr);
    EXPECT_EQ(missing.status, ArchiveStatus::NotFound);
    EXPECT_FALSE(missing.healthy());

    spew(path("manifest.json"), manifest + "garbage trailer");
    const FsckReport corrupt = fsckArchive(dir());
    EXPECT_NE(findKind(corrupt, FsckFindingKind::CorruptManifest),
              nullptr);
    EXPECT_EQ(corrupt.status, ArchiveStatus::CorruptManifest);
}

TEST_F(FsckTest, MissingPoolIsAnError)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    std::filesystem::remove(path("pool.fasta"));

    const FsckReport report = fsckArchive(dir());
    EXPECT_NE(findKind(report, FsckFindingKind::MissingPool), nullptr);
    EXPECT_EQ(report.status, ArchiveStatus::CorruptPool);
    EXPECT_FALSE(report.healthy());
}

TEST_F(FsckTest, DeepScrubPassesOnCleanArchiveAndCatchesCorruption)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("a", patternBytes(120, 5)).ok());

    FsckOptions deep;
    deep.deep = true;
    deep.retrieval.error_rate = 0.01;
    deep.retrieval.min_cluster_size = 1;
    const FsckReport healthy_scan = fsckArchive(dir(), deep);
    EXPECT_TRUE(healthy_scan.healthy()) << healthy_scan.error;
    EXPECT_EQ(findKind(healthy_scan, FsckFindingKind::ShardUndecodable),
              nullptr);

    // Corrupt every strand's payload region (keep ids and counts, so
    // the structural audit still passes) — only --deep catches it.
    std::string pool = slurp(path("pool.fasta"));
    for (std::size_t i = 0; i < pool.size(); ++i) {
        // Leave header lines alone; scramble sequence lines A<->C.
        if (i > 0 && (pool[i - 1] == '\n' || i == 0))
            continue;
        if (pool[i] == 'A')
            pool[i] = 'C';
        else if (pool[i] == 'C')
            pool[i] = 'A';
    }
    // Re-scramble only sequence lines properly: rebuild line by line.
    std::istringstream in(slurp(path("pool.fasta")));
    std::string line;
    std::string scrambled;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '>') {
            for (char &c : line)
                c = (c == 'A') ? 'C' : (c == 'C') ? 'A' : c;
        }
        scrambled += line;
        scrambled += '\n';
    }
    spew(path("pool.fasta"), scrambled);

    EXPECT_TRUE(fsckArchive(dir()).healthy()); // structural audit blind
    const FsckReport deep_scan = fsckArchive(dir(), deep);
    EXPECT_FALSE(deep_scan.healthy());
    EXPECT_NE(findKind(deep_scan, FsckFindingKind::ShardUndecodable),
              nullptr);
}

TEST_F(FsckTest, ReportJsonCarriesSchemaAndFindings)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    spew(path("manifest.json.tmp.9.9"), "stale");

    const FsckOptions options;
    const FsckReport report = fsckArchive(dir(), options);
    const std::string json = fsckReportJson(report, dir(), options);
    EXPECT_NE(json.find("\"schema\":\"dnastore.fsck_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":" +
                        std::to_string(obs::kSchemaVersion)),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"stale_temp_file\""),
              std::string::npos);
    EXPECT_NE(json.find("\"healthy\":true"), std::string::npos);
    EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
}
