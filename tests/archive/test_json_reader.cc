#include "archive/json_reader.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

using dnastore::archive::JsonValue;
using dnastore::archive::tryParseJson;

TEST(JsonReader, ParsesScalars)
{
    auto v = tryParseJson("true");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asBool(), true);

    v = tryParseJson("false");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asBool(), false);

    v = tryParseJson("null");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->isNull());

    v = tryParseJson("\"hello\"");
    ASSERT_TRUE(v.has_value());
    ASSERT_NE(v->asString(), nullptr);
    EXPECT_EQ(*v->asString(), "hello");
}

TEST(JsonReader, ParsesNumbers)
{
    auto v = tryParseJson("42");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asUint(), std::uint64_t{42});
    EXPECT_DOUBLE_EQ(v->asDouble().value(), 42.0);

    v = tryParseJson("-17");
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(v->asUint().has_value()); // negative: double only
    EXPECT_DOUBLE_EQ(v->asDouble().value(), -17.0);

    v = tryParseJson("0.25");
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(v->asUint().has_value());
    EXPECT_DOUBLE_EQ(v->asDouble().value(), 0.25);

    v = tryParseJson("1e3");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->asDouble().value(), 1000.0);

    // Exact 64-bit value that a double would round.
    v = tryParseJson("18446744073709551615");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asUint(), std::numeric_limits<std::uint64_t>::max());
}

TEST(JsonReader, ParsesNestedStructure)
{
    const auto v = tryParseJson(
        R"({"a":[1,2,3],"b":{"c":"x","d":false},"e":null})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());

    const JsonValue *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(a->asArray(), nullptr);
    ASSERT_EQ(a->asArray()->size(), 3u);
    EXPECT_EQ((*a->asArray())[2].asUint(), std::uint64_t{3});

    const JsonValue *d = v->find("b")->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->asBool(), false);

    EXPECT_TRUE(v->find("e")->isNull());
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonReader, DecodesStringEscapes)
{
    const auto v = tryParseJson(R"("a\"b\\c\ndAé")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v->asString(), "a\"b\\c\nd"
                              "A\xc3\xa9");
}

TEST(JsonReader, DecodesSurrogatePairs)
{
    // U+1F600 (grinning face) as an escaped surrogate pair.
    const auto v = tryParseJson(R"("\ud83d\ude00")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v->asString(), "\xf0\x9f\x98\x80");

    // Raw UTF-8 passes through untouched.
    const auto raw = tryParseJson("\"\xc3\xa9\"");
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(*raw->asString(), "\xc3\xa9");
}

TEST(JsonReader, AccessorsRejectKindMismatches)
{
    const auto v = tryParseJson(R"({"s":"x","n":1.5,"b":true,"a":[]})");
    ASSERT_TRUE(v.has_value());
    ASSERT_NE(v->asObject(), nullptr);

    EXPECT_FALSE(v->find("n")->asBool().has_value());
    EXPECT_FALSE(v->find("s")->asDouble().has_value());
    EXPECT_FALSE(v->find("s")->asUint().has_value());
    EXPECT_EQ(v->find("b")->asString(), nullptr);
    EXPECT_EQ(v->find("n")->asArray(), nullptr);
    EXPECT_EQ(v->find("a")->asObject(), nullptr);
    // find() on a non-object is a clean nullptr, not a crash.
    EXPECT_EQ(v->find("a")->find("k"), nullptr);
}

TEST(JsonReader, DecodesAllSimpleEscapes)
{
    const auto v = tryParseJson(R"("\/\b\f\n\r\t\"\\")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v->asString(), "/\b\f\n\r\t\"\\");
}

TEST(JsonReader, DecodesUnicodeEscapeWidths)
{
    // One escape per UTF-8 width: 1, 2 and 3 bytes (4 bytes needs a
    // surrogate pair, tested separately), plus uppercase hex digits.
    const auto v = tryParseJson(R"("\u0041\u00e9\u20ac\uFB01")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v->asString(), "A"
                              "\xc3\xa9"
                              "\xe2\x82\xac"
                              "\xef\xac\x81");
}

TEST(JsonReader, ParsesSignedExponents)
{
    auto v = tryParseJson("2.5e+3");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->asDouble().value(), 2500.0);

    v = tryParseJson("1E-2");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->asDouble().value(), 0.01);
}

TEST(JsonReader, OverflowingExponentsAreRejected)
{
    // from_chars reports result_out_of_range; the parser must reject
    // rather than saturate to infinity.
    EXPECT_FALSE(tryParseJson("1e999").has_value());
    EXPECT_FALSE(tryParseJson("-1e999").has_value());
    EXPECT_FALSE(tryParseJson("1e-999").has_value());
    // The largest finite double still parses.
    const auto v = tryParseJson("1.7976931348623157e308");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->asDouble().has_value());
}

TEST(JsonReader, NegativeZeroIsDoubleOnly)
{
    const auto v = tryParseJson("-0");
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(v->asUint().has_value()); // sign excludes the uint view
    ASSERT_TRUE(v->asDouble().has_value());
    EXPECT_TRUE(std::signbit(v->asDouble().value()));

    const auto plain = tryParseJson("0");
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->asUint(), std::uint64_t{0});
}

TEST(JsonReader, LeadingPlusIsRejected)
{
    // JSON grammar admits only `-` as a sign on the integer part.
    EXPECT_FALSE(tryParseJson("+1").has_value());
    EXPECT_FALSE(tryParseJson("+0.5").has_value());
    EXPECT_FALSE(tryParseJson("[+1]").has_value());
}

TEST(JsonReader, LoneSurrogateEscapesAreRejected)
{
    // Both halves of the surrogate range, alone and reversed.
    EXPECT_FALSE(tryParseJson("\"\\ud800\"").has_value());
    EXPECT_FALSE(tryParseJson("\"\\udbff\"").has_value());
    EXPECT_FALSE(tryParseJson("\"\\udc00\\ud800\"").has_value());
    EXPECT_FALSE(tryParseJson("\"\\udfff x\"").has_value());
    // A well-formed pair still decodes.
    const auto v = tryParseJson("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(v.has_value());
}

TEST(JsonReader, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "tru",
        "nul",
        "01x",
        "\"unterminated",
        "\"bad \\q escape\"",
        "\"lone \\ud800 surrogate\"",
        "\"ends mid-escape \\",
        "\"\\u12\"",             // truncated hex quad
        "\"\\uzzzz\"",           // non-hex digits
        "\"\\ud800\\u0041\"",    // high surrogate without low
        "\"\\udc00\"",           // lone low surrogate
        "falsy",
        "[1 2]",                 // array missing separator
        "1 2",          // trailing garbage
        "{\"a\":1}}",   // trailing garbage
        "\"raw\tcontrol\"",
        "-",
        "1.",
        "1e",
        "2e+",
    };
    for (const char *text : bad)
        EXPECT_FALSE(tryParseJson(text).has_value()) << text;
}

TEST(JsonReader, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    deep += "1";
    for (int i = 0; i < 100; ++i)
        deep += "]";
    EXPECT_FALSE(tryParseJson(deep).has_value());

    std::string shallow = "[[[[[1]]]]]";
    EXPECT_TRUE(tryParseJson(shallow).has_value());
}

TEST(JsonReader, LastDuplicateKeyWins)
{
    const auto v = tryParseJson(R"({"k":1,"k":2})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("k")->asUint(), std::uint64_t{2});
}

TEST(JsonReader, ToleratesWhitespace)
{
    const auto v = tryParseJson(" \n\t{ \"a\" : [ 1 , 2 ] }\r\n ");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("a")->asArray()->size(), 2u);
}
