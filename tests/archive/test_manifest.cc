#include "archive/manifest.hh"

#include <gtest/gtest.h>

#include <string>

using namespace dnastore;
using namespace dnastore::archive;

namespace
{

ArchiveManifest
sampleManifest()
{
    ArchiveManifest m;
    m.params.codec.payload_nt = 120;
    m.params.codec.index_nt = 12;
    m.params.codec.rs_n = 60;
    m.params.codec.rs_k = 40;
    m.params.codec.scheme = LayoutScheme::Gini;
    m.params.primer_seed = 1234;
    m.params.max_shard_bytes = 512;

    ObjectEntry a;
    a.name = "alpha";
    a.id = 0;
    a.size_bytes = 700;
    a.crc32_value = 0xdeadbeef;
    a.shards = {{1, 512, 1, 60}, {2, 188, 1, 60}};
    m.objects.push_back(a);

    ObjectEntry b;
    b.name = "beta";
    b.id = 1;
    b.size_bytes = 100;
    b.crc32_value = 42;
    b.shards = {{3, 100, 1, 60}};
    m.objects.push_back(b);
    return m;
}

} // namespace

TEST(Manifest, Helpers)
{
    const ArchiveManifest m = sampleManifest();
    ASSERT_NE(m.findObject("alpha"), nullptr);
    EXPECT_EQ(m.findObject("alpha")->id, 0u);
    EXPECT_EQ(m.findObject("gamma"), nullptr);
    EXPECT_EQ(m.nextObjectId(), 2u);
    EXPECT_EQ(m.totalShards(), 3u);
    EXPECT_EQ(m.nextPairId(), 4u);
}

TEST(Manifest, JsonRoundTrip)
{
    const ArchiveManifest m = sampleManifest();
    const std::string text = manifestJson(m);

    const ManifestParseResult parsed = tryParseManifest(text);
    ASSERT_TRUE(parsed.manifest.has_value()) << parsed.error;
    const ArchiveManifest &r = *parsed.manifest;

    EXPECT_EQ(r.params.codec.payload_nt, m.params.codec.payload_nt);
    EXPECT_EQ(r.params.codec.rs_n, m.params.codec.rs_n);
    EXPECT_EQ(r.params.codec.scheme, LayoutScheme::Gini);
    EXPECT_EQ(r.params.primer_seed, m.params.primer_seed);
    EXPECT_EQ(r.params.max_shard_bytes, m.params.max_shard_bytes);

    ASSERT_EQ(r.objects.size(), 2u);
    EXPECT_EQ(r.objects[0].name, "alpha");
    EXPECT_EQ(r.objects[0].crc32_value, 0xdeadbeef);
    ASSERT_EQ(r.objects[0].shards.size(), 2u);
    EXPECT_EQ(r.objects[0].shards[1].pair_id, 2u);
    EXPECT_EQ(r.objects[0].shards[1].size_bytes, 188u);
    EXPECT_EQ(r.objects[1].shards[0].strands, 60u);

    // Canonical serialisation: re-emitting the parsed manifest is
    // byte-identical (this is also how the CRC is verified).
    EXPECT_EQ(manifestJson(r), text);
}

TEST(Manifest, EmptyManifestRoundTrips)
{
    ArchiveManifest m;
    const ManifestParseResult parsed = tryParseManifest(manifestJson(m));
    ASSERT_TRUE(parsed.manifest.has_value()) << parsed.error;
    EXPECT_TRUE(parsed.manifest->objects.empty());
    EXPECT_EQ(parsed.manifest->nextPairId(), 1u);
}

TEST(Manifest, RejectsTamperedPayload)
{
    const std::string text = manifestJson(sampleManifest());
    // Flip beta's stored object CRC (42 -> 43): still valid JSON and
    // structurally consistent, but the payload CRC no longer matches.
    std::string tampered = text;
    const std::size_t at = tampered.find("\"crc32\":42,");
    ASSERT_NE(at, std::string::npos);
    tampered[at + 9] = '3';
    const ManifestParseResult parsed = tryParseManifest(tampered);
    EXPECT_FALSE(parsed.manifest.has_value());
    EXPECT_NE(parsed.error.find("CRC"), std::string::npos) << parsed.error;

    // An internally inconsistent payload is rejected even before the
    // CRC check: shard sizes must sum to the object size.
    std::string bad_sum = text;
    const std::size_t sat = bad_sum.find("700");
    ASSERT_NE(sat, std::string::npos);
    bad_sum[sat + 2] = '1';
    const ManifestParseResult sum_parsed = tryParseManifest(bad_sum);
    EXPECT_FALSE(sum_parsed.manifest.has_value());
    EXPECT_NE(sum_parsed.error.find("shard sizes"), std::string::npos)
        << sum_parsed.error;
}

TEST(Manifest, RejectsWrongSchemaAndVersion)
{
    const std::string text = manifestJson(sampleManifest());

    std::string wrong_schema = text;
    const std::size_t at = wrong_schema.find("archive_manifest");
    ASSERT_NE(at, std::string::npos);
    wrong_schema.replace(at, 16, "something_else__");
    EXPECT_FALSE(tryParseManifest(wrong_schema).manifest.has_value());

    std::string wrong_version = text;
    const std::size_t vat = wrong_version.find("\"schema_version\":1");
    ASSERT_NE(vat, std::string::npos);
    wrong_version.replace(vat, 18, "\"schema_version\":9");
    EXPECT_FALSE(tryParseManifest(wrong_version).manifest.has_value());
}

TEST(Manifest, RejectsGarbageAndTruncation)
{
    EXPECT_FALSE(tryParseManifest("").manifest.has_value());
    EXPECT_FALSE(tryParseManifest("not json").manifest.has_value());
    EXPECT_FALSE(tryParseManifest("{}").manifest.has_value());

    const std::string text = manifestJson(sampleManifest());
    const std::string truncated = text.substr(0, text.size() / 2);
    EXPECT_FALSE(tryParseManifest(truncated).manifest.has_value());
}

TEST(Manifest, ParseErrorsAreDescriptive)
{
    const ManifestParseResult parsed = tryParseManifest("{}");
    EXPECT_FALSE(parsed.error.empty());
}

TEST(Manifest, AllSchemesRoundTrip)
{
    for (const LayoutScheme scheme :
         {LayoutScheme::Baseline, LayoutScheme::Gini,
          LayoutScheme::DNAMapper}) {
        ArchiveManifest m;
        m.params.codec.scheme = scheme;
        const ManifestParseResult parsed =
            tryParseManifest(manifestJson(m));
        ASSERT_TRUE(parsed.manifest.has_value()) << parsed.error;
        EXPECT_EQ(parsed.manifest->params.codec.scheme, scheme);
    }
}

namespace
{

/** Wrap a payload in the document skeleton.  Structural violations are
 *  rejected before CRC verification, so crc32 can stay 0. */
std::string
docWithPayload(const std::string &payload)
{
    return "{\"crc32\":0,\"payload\":" + payload +
           ",\"schema\":\"dnastore.archive_manifest\","
           "\"schema_version\":1}";
}

const char *const kGoodCodec =
    R"({"index_nt":12,"payload_nt":120,"randomizer_seed":1,)"
    R"("rs_k":40,"rs_n":60,"scheme":"gini"})";
const char *const kGoodPrimer =
    R"({"length":20,"max_gc":0.6,"max_homopolymer":3,)"
    R"("min_gc":0.4,"min_hamming":8})";

/** A params section with the given codec/primer snippets spliced in. */
std::string
paramsWith(const std::string &codec, const std::string &primer,
           const std::string &tail =
               R"("max_shard_bytes":512,"primer_seed":1)")
{
    return "{\"codec\":" + codec + ",\"primer\":" + primer + "," + tail +
           "}";
}

std::string
payloadWith(const std::string &objects, const std::string &params)
{
    return "{\"objects\":" + objects + ",\"params\":" + params + "}";
}

} // namespace

TEST(Manifest, RejectsStructuralViolations)
{
    const std::string good_params = paramsWith(kGoodCodec, kGoodPrimer);
    const struct
    {
        std::string payload;
        const char *expect; //!< Substring of the error message.
    } cases[] = {
        {"{\"objects\":[]}", "params"},
        {payloadWith("[]", "17"), "params"},
        {payloadWith("[]", "{}"), "codec/primer"},
        {payloadWith("[]",
                     paramsWith(R"({"index_nt":"x"})", kGoodPrimer)),
         "not a non-negative integer"},
        {payloadWith(
             "[]",
             paramsWith(
                 R"({"index_nt":12,"payload_nt":120,)"
                 R"("randomizer_seed":1,"rs_k":40,"rs_n":60})",
                 kGoodPrimer)),
         "scheme"},
        {payloadWith(
             "[]",
             paramsWith(
                 R"({"index_nt":12,"payload_nt":120,)"
                 R"("randomizer_seed":1,"rs_k":40,"rs_n":60,)"
                 R"("scheme":"turbo"})",
                 kGoodPrimer)),
         "unknown codec scheme"},
        {payloadWith("[]", paramsWith(kGoodCodec, R"({"length":20})")),
         "missing field"},
        {payloadWith("[]",
                     paramsWith(kGoodCodec,
                                R"({"length":20,"max_gc":"high",)"
                                R"("max_homopolymer":3,"min_gc":0.4,)"
                                R"("min_hamming":8})")),
         "not a number"},
        {payloadWith("[]",
                     paramsWith(kGoodCodec, kGoodPrimer,
                                R"("max_shard_bytes":0,)"
                                R"("primer_seed":1)")),
         "max_shard_bytes must be positive"},
        {payloadWith("[]", paramsWith(kGoodCodec, kGoodPrimer,
                                      R"("max_shard_bytes":512)")),
         "primer_seed"},
        {"{\"params\":" + good_params + "}", "objects"},
        {payloadWith(R"([{"crc32":1,"id":0,"size_bytes":0,)"
                     R"("shards":[]}])",
                     good_params),
         "name"},
        {payloadWith(R"([{"name":"x","crc32":1,"size_bytes":0,)"
                     R"("shards":[]}])",
                     good_params),
         "missing field: id"},
        {payloadWith(R"([{"name":"x","crc32":5000000000,"id":0,)"
                     R"("size_bytes":0,"shards":[]}])",
                     good_params),
         "32-bit range"},
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,)"
                     R"("size_bytes":0}])",
                     good_params),
         "shards array"},
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,"size_bytes":9,)"
                     R"("shards":[{"pair_id":0,"size_bytes":9,)"
                     R"("strands":60,"units":1}]}])",
                     good_params),
         "reserved"},
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,"size_bytes":9,)"
                     R"("shards":[{"pair_id":1,"size_bytes":9,)"
                     R"("strands":60}]}])",
                     good_params),
         "missing field: units"},
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,"size_bytes":9,)"
                     R"("shards":[{"pair_id":1,"size_bytes":9,)"
                     R"("strands":60,"units":1}]},)"
                     R"({"name":"x","crc32":1,"id":1,"size_bytes":9,)"
                     R"("shards":[{"pair_id":2,"size_bytes":9,)"
                     R"("strands":60,"units":1}]}])",
                     good_params),
         "duplicate object name"},
        // Pair ids must be the contiguous block [1, totalShards]:
        // a hole (pair 7 on a single-shard manifest) or a reused id
        // would index past per-pair tables sized from nextPairId().
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,"size_bytes":9,)"
                     R"("shards":[{"pair_id":7,"size_bytes":9,)"
                     R"("strands":60,"units":1}]}])",
                     good_params),
         "out of range"},
        {payloadWith(R"([{"name":"x","crc32":1,"id":0,"size_bytes":9,)"
                     R"("shards":[{"pair_id":1,"size_bytes":9,)"
                     R"("strands":60,"units":1}]},)"
                     R"({"name":"y","crc32":1,"id":1,"size_bytes":9,)"
                     R"("shards":[{"pair_id":1,"size_bytes":9,)"
                     R"("strands":60,"units":1}]}])",
                     good_params),
         "addresses two shards"},
    };

    for (const auto &c : cases) {
        const ManifestParseResult parsed =
            tryParseManifest(docWithPayload(c.payload));
        EXPECT_FALSE(parsed.manifest.has_value()) << c.payload;
        EXPECT_NE(parsed.error.find(c.expect), std::string::npos)
            << "payload: " << c.payload << "\nerror: " << parsed.error;
    }
}
