/**
 * @file
 * Multi-object decode isolation: corrupting one object's retrieval must
 * not disturb the other objects sharing the pool, and the failure must
 * stay confined to that object's per-shard stage statuses.
 */

#include "archive/archive.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/fault.hh"
#include "util/random.hh"

using namespace dnastore;
using namespace dnastore::archive;

namespace
{

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

} // namespace

TEST(ArchiveIsolation, FaultsOnOneObjectLeaveTheOtherIntact)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "archive_isolation")
            .string();
    std::filesystem::remove_all(dir);

    ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 256;

    auto created = Archive::create(dir, params);
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;

    const auto victim = randomBytes(600, 101);
    const auto bystander = randomBytes(400, 202);
    const auto put_victim = tube.put("victim", victim);
    ASSERT_TRUE(put_victim.ok()) << put_victim.error;
    ASSERT_GE(put_victim.shards, 2u);
    ASSERT_TRUE(tube.put("bystander", bystander).ok());

    // Retrieval of "victim" under catastrophic injected faults: nearly
    // every read is garbage and most clusters are dropped.
    FaultPlan plan;
    plan.index_nt = params.codec.index_nt;
    plan.garbage_read = 0.9;
    plan.read_truncation = 0.8;
    plan.cluster_drop = 0.8;
    FaultInjector injector(plan);

    RetrievalConfig faulty;
    faulty.error_rate = 0.02;
    faulty.seed = 5;
    faulty.fault_injector = &injector;

    const GetResult broken = tube.get("victim", faulty);
    EXPECT_FALSE(broken.ok());
    EXPECT_EQ(broken.status, ArchiveStatus::DecodeFailed);
    EXPECT_TRUE(broken.data.empty());
    ASSERT_EQ(broken.shards.size(), put_victim.shards);

    // The failure is visible per shard, in the stage taxonomy — not as
    // an exception and not as silent garbage.
    bool any_failed = false;
    for (const ShardOutcome &shard : broken.shards) {
        if (shard.ok)
            continue;
        any_failed = true;
        EXPECT_TRUE(shard.stages.decoding == StageStatus::Failed ||
                    shard.stages.decoding == StageStatus::Degraded ||
                    !shard.errors.empty())
            << "failed shard " << shard.pair_id
            << " carries no diagnostic";
    }
    EXPECT_TRUE(any_failed);

    // The bystander object, sharing the same tube, is untouched.
    RetrievalConfig clean;
    clean.error_rate = 0.02;
    clean.seed = 6;
    const GetResult other = tube.get("bystander", clean);
    ASSERT_TRUE(other.ok()) << other.error;
    EXPECT_EQ(other.data, bystander);

    // And the victim itself was never damaged at rest: retrieval
    // without the injector round-trips byte-exactly.
    const GetResult healed = tube.get("victim", clean);
    ASSERT_TRUE(healed.ok()) << healed.error;
    EXPECT_EQ(healed.data, victim);

    std::filesystem::remove_all(dir);
}
