#include "archive/archive.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/random.hh"

using namespace dnastore;
using namespace dnastore::archive;

namespace
{

std::vector<std::uint8_t>
patternBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

ArchiveParams
smallParams()
{
    ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 256;
    return params;
}

class ArchiveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::path(::testing::TempDir()) /
               ("archive_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir() const { return dir_.string(); }

    std::filesystem::path dir_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
spew(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Split a FASTA file into whole records (">id\nseq..." blocks). */
std::vector<std::string>
fastaRecords(const std::string &text)
{
    std::vector<std::string> records;
    std::size_t at = text.find('>');
    while (at != std::string::npos) {
        const std::size_t next = text.find('>', at + 1);
        records.push_back(text.substr(
            at, next == std::string::npos ? next : next - at));
        at = next;
    }
    return records;
}

std::string
joinRecords(const std::vector<std::string> &records)
{
    std::string out;
    for (const std::string &record : records)
        out += record;
    return out;
}

} // namespace

TEST_F(ArchiveTest, EndToEndMultiObjectWetlabRoundTrip)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;

    // Three objects; "large" spans >= 4 shards (1100 / 256 -> 5).
    const auto large = patternBytes(1100, 11);
    const auto medium = patternBytes(300, 22);
    const std::string text = "small text object stored in nucleotides";
    const std::vector<std::uint8_t> small(text.begin(), text.end());

    const auto put_large = tube.put("large", large, /*num_threads=*/4);
    ASSERT_TRUE(put_large.ok()) << put_large.error;
    EXPECT_GE(put_large.shards, 4u);
    const auto put_medium = tube.put("medium", medium);
    ASSERT_TRUE(put_medium.ok()) << put_medium.error;
    const auto put_small = tube.put("small", small);
    ASSERT_TRUE(put_small.ok()) << put_small.error;

    EXPECT_EQ(tube.objects().size(), 3u);
    ASSERT_NE(tube.stat("large"), nullptr);
    EXPECT_EQ(tube.stat("large")->size_bytes, large.size());

    // Retrieval through the virtual-wetlab channel over the mixed pool.
    RetrievalConfig retrieval;
    retrieval.channel = RetrievalChannel::Wetlab;
    retrieval.error_rate = 0.03;
    retrieval.coverage = 14.0;
    retrieval.seed = 99;
    retrieval.num_threads = 4;

    const GetResult got_large = tube.get("large", retrieval);
    ASSERT_TRUE(got_large.ok()) << got_large.error;
    EXPECT_EQ(got_large.data, large);
    EXPECT_EQ(got_large.shards.size(), put_large.shards);
    for (const ShardOutcome &shard : got_large.shards) {
        EXPECT_TRUE(shard.ok);
        EXPECT_GT(shard.reads, 0u);
        EXPECT_NE(shard.stages.decoding, StageStatus::Skipped);
    }

    const GetResult got_small = tube.get("small", retrieval);
    ASSERT_TRUE(got_small.ok()) << got_small.error;
    EXPECT_EQ(got_small.data, small);

    // Nonexistent name: clean failure, no throw, empty payload.
    const GetResult missing = tube.get("no-such-object", retrieval);
    EXPECT_EQ(missing.status, ArchiveStatus::NotFound);
    EXPECT_TRUE(missing.data.empty());
    EXPECT_FALSE(missing.error.empty());
}

TEST_F(ArchiveTest, ReopenedArchiveRoundTrips)
{
    const auto payload = patternBytes(600, 33);
    {
        auto created = Archive::create(dir(), smallParams());
        ASSERT_TRUE(created.ok()) << created.error;
        ASSERT_TRUE(created.archive->put("obj", payload).ok());
    }

    auto reopened = Archive::open(dir());
    ASSERT_TRUE(reopened.ok()) << reopened.error;
    EXPECT_EQ(reopened.archive->objects().size(), 1u);

    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    const GetResult got = reopened.archive->get("obj", retrieval);
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, payload);
}

TEST_F(ArchiveTest, ManifestIsSelfDescribingInDna)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("a", patternBytes(200, 1)).ok());
    ASSERT_TRUE(created.archive->put("b", patternBytes(500, 2)).ok());

    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    const ManifestParseResult decoded =
        created.archive->decodeManifestFromDna(retrieval);
    ASSERT_TRUE(decoded.manifest.has_value()) << decoded.error;
    EXPECT_EQ(decoded.manifest->objects.size(), 2u);
    EXPECT_NE(decoded.manifest->findObject("b"), nullptr);
}

TEST_F(ArchiveTest, RejectsBadArguments)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;
    const auto payload = patternBytes(100, 44);
    ASSERT_TRUE(tube.put("obj", payload).ok());

    EXPECT_EQ(tube.put("obj", payload).status,
              ArchiveStatus::AlreadyExists);
    EXPECT_EQ(tube.put("", payload).status,
              ArchiveStatus::InvalidArgument);
    EXPECT_EQ(tube.put("empty", {}).status,
              ArchiveStatus::InvalidArgument);

    // Creating over an existing archive is refused, too.
    EXPECT_EQ(Archive::create(dir(), smallParams()).status,
              ArchiveStatus::AlreadyExists);

    // Opening a directory that is not an archive is NotFound.
    EXPECT_EQ(Archive::open(dir() + "_nope").status,
              ArchiveStatus::NotFound);
}

TEST_F(ArchiveTest, DetectsOnDiskCorruption)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("obj", patternBytes(100, 5)).ok());

    // Tamper with the manifest file.
    const std::string manifest_path = dir() + "/manifest.json";
    {
        std::ofstream out(manifest_path, std::ios::binary);
        out << "{\"schema\":\"dnastore.archive_manifest\"}";
    }
    EXPECT_EQ(Archive::open(dir()).status,
              ArchiveStatus::CorruptManifest);
}

TEST_F(ArchiveTest, DetectsPoolManifestMismatch)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("obj", patternBytes(100, 6)).ok());

    // Drop the pool file entirely: manifest promises strands that are
    // no longer there.
    std::filesystem::remove(dir() + "/pool.fasta");
    const auto reopened = Archive::open(dir());
    EXPECT_EQ(reopened.status, ArchiveStatus::CorruptPool);
}

TEST(ArchiveStatus, NamesAreStableAndUnique)
{
    const ArchiveStatus all[] = {
        ArchiveStatus::Ok,           ArchiveStatus::NotFound,
        ArchiveStatus::AlreadyExists, ArchiveStatus::InvalidArgument,
        ArchiveStatus::IoError,      ArchiveStatus::CorruptManifest,
        ArchiveStatus::CorruptPool,  ArchiveStatus::EncodeFailed,
        ArchiveStatus::DecodeFailed,
    };
    std::vector<std::string> names;
    for (const ArchiveStatus status : all) {
        const std::string name = archiveStatusName(status);
        EXPECT_FALSE(name.empty());
        for (const std::string &seen : names)
            EXPECT_NE(name, seen);
        names.push_back(name);
    }
    EXPECT_EQ(names.front(), "ok");
}

TEST_F(ArchiveTest, CreateRejectsInvalidParameters)
{
    EXPECT_EQ(Archive::create("", smallParams()).status,
              ArchiveStatus::InvalidArgument);

    ArchiveParams no_shards = smallParams();
    no_shards.max_shard_bytes = 0;
    EXPECT_EQ(Archive::create(dir(), no_shards).status,
              ArchiveStatus::InvalidArgument);

    // Degenerate codec geometry is refused up front.
    ArchiveParams bad_codec = smallParams();
    bad_codec.codec.rs_n = 40;
    bad_codec.codec.rs_k = 60;
    const auto refused = Archive::create(dir(), bad_codec);
    EXPECT_EQ(refused.status, ArchiveStatus::InvalidArgument);
    EXPECT_NE(refused.error.find("codec"), std::string::npos);

    // A path whose parent is a regular file cannot become a directory.
    spew(dir() + "_file", "not a directory");
    EXPECT_EQ(Archive::create(dir() + "_file/sub", smallParams()).status,
              ArchiveStatus::IoError);
    std::filesystem::remove(dir() + "_file");
}

TEST_F(ArchiveTest, OpenRejectsMangledPoolRecords)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("obj", patternBytes(100, 8)).ok());
    const std::string pool_path = dir() + "/pool.fasta";
    const std::string pool = slurp(pool_path);

    // Record ids that no longer parse back to a known pair id — or,
    // for the last case, retag an object's molecule under an
    // unallocated pair, which the per-pair strand accounting catches.
    const char *mangled_ids[] = {
        "m0 nopair",           // marker missing entirely
        "m0 pair=12x",         // trailing junk in the digits
        "m0 pair=8589934592",  // fits unsigned long long, exceeds 2^32
        "m0 pair=99999999999999999999999999", // overflows unsigned long long
        "m0 pair=7",           // object strand moved to unallocated pair
    };
    for (const char *id : mangled_ids) {
        std::string mangled = pool;
        const std::size_t at = mangled.find('>');
        const std::size_t eol = mangled.find('\n', at);
        mangled.replace(at + 1, eol - at - 1, id);
        spew(pool_path, mangled);
        const auto reopened = Archive::open(dir());
        EXPECT_EQ(reopened.status, ArchiveStatus::CorruptPool) << id;
        EXPECT_NE(reopened.error.find("pair"), std::string::npos) << id;
    }

    // Dropping one of the object's molecules (the first record; pair-0
    // manifest copies sit at the end) breaks the strand accounting.
    auto records = fastaRecords(pool);
    ASSERT_GT(records.size(), 1u);
    records.erase(records.begin());
    spew(pool_path, joinRecords(records));
    const auto short_pool = Archive::open(dir());
    EXPECT_EQ(short_pool.status, ArchiveStatus::CorruptPool);
    EXPECT_NE(short_pool.error.find("mismatch"), std::string::npos)
        << short_pool.error;
}

TEST_F(ArchiveTest, OpenRejectsHandEditedPairIds)
{
    // A hand-edited manifest can carry a recomputed (valid) CRC yet
    // reference a pair id outside the contiguous block put() allocates;
    // open() must reject it instead of indexing past per-pair tables.
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("obj", patternBytes(100, 15)).ok());

    ArchiveManifest edited = created.archive->manifest();
    ASSERT_EQ(edited.objects.size(), 1u);
    ASSERT_EQ(edited.objects[0].shards.size(), 1u);
    edited.objects[0].shards[0].pair_id = 7;
    // manifestJson recomputes the payload CRC, exactly as a careful
    // hand-editor would.
    spew(dir() + "/manifest.json", manifestJson(edited));

    const auto reopened = Archive::open(dir());
    EXPECT_EQ(reopened.status, ArchiveStatus::CorruptManifest);
    EXPECT_NE(reopened.error.find("out of range"), std::string::npos)
        << reopened.error;

    // A duplicated pair id is rejected the same way.
    ArchiveManifest duplicated = created.archive->manifest();
    ObjectEntry clone = duplicated.objects[0];
    clone.name = "clone";
    clone.id = 1;
    duplicated.objects.push_back(clone);
    spew(dir() + "/manifest.json", manifestJson(duplicated));
    const auto dup_open = Archive::open(dir());
    EXPECT_EQ(dup_open.status, ArchiveStatus::CorruptManifest);
    EXPECT_NE(dup_open.error.find("addresses two shards"),
              std::string::npos)
        << dup_open.error;
}

TEST_F(ArchiveTest, OpenToleratesPoolAheadOfManifest)
{
    // A crash between save()'s two renames (pool committed, manifest
    // not) leaves a new pool next to the old manifest.  open() must
    // accept that state — dropping the orphan records — rather than
    // brick the archive.
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;
    const auto first = patternBytes(100, 16);
    ASSERT_TRUE(tube.put("first", first).ok());
    const std::string old_manifest = slurp(dir() + "/manifest.json");
    ASSERT_TRUE(tube.put("second", patternBytes(300, 17)).ok());
    spew(dir() + "/manifest.json", old_manifest);

    auto reopened = Archive::open(dir());
    ASSERT_TRUE(reopened.ok()) << reopened.error;
    EXPECT_EQ(reopened.archive->objects().size(), 1u);
    EXPECT_EQ(reopened.archive->stat("second"), nullptr);

    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    const GetResult got = reopened.archive->get("first", retrieval);
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, first);

    // Re-storing the lost object reuses the orphaned pair ids cleanly.
    const auto second = patternBytes(300, 17);
    ASSERT_TRUE(reopened.archive->put("second", second).ok());
    const GetResult got_second = reopened.archive->get("second", retrieval);
    ASSERT_TRUE(got_second.ok()) << got_second.error;
    EXPECT_EQ(got_second.data, second);
}

TEST_F(ArchiveTest, ConcurrentConstGetsAgree)
{
    // Two threads retrieving from one freshly opened Archive both
    // trigger the lazy primer-library design from a const method; the
    // internal lock must serialise it (TSan-visible otherwise).
    const auto payload = patternBytes(400, 18);
    {
        auto created = Archive::create(dir(), smallParams());
        ASSERT_TRUE(created.ok()) << created.error;
        ASSERT_TRUE(created.archive->put("obj", payload).ok());
    }
    auto reopened = Archive::open(dir());
    ASSERT_TRUE(reopened.ok()) << reopened.error;
    const Archive &tube = *reopened.archive;

    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    GetResult results[2];
    std::thread a([&] { results[0] = tube.get("obj", retrieval); });
    std::thread b([&] { results[1] = tube.get("obj", retrieval); });
    a.join();
    b.join();
    for (const GetResult &got : results) {
        ASSERT_TRUE(got.ok()) << got.error;
        EXPECT_EQ(got.data, payload);
    }
}

TEST_F(ArchiveTest, OpenRejectsManifestWithBadCodec)
{
    // A manifest can be schema-valid yet describe an impossible codec;
    // open() must refuse it instead of constructing broken modules.
    ArchiveManifest bad;
    bad.params = smallParams();
    bad.params.codec.rs_n = 40;
    bad.params.codec.rs_k = 60;
    std::filesystem::create_directories(dir());
    spew(dir() + "/manifest.json", manifestJson(bad));
    spew(dir() + "/pool.fasta", "");
    const auto opened = Archive::open(dir());
    EXPECT_EQ(opened.status, ArchiveStatus::CorruptManifest);
    EXPECT_NE(opened.error.find("codec"), std::string::npos)
        << opened.error;
}

TEST_F(ArchiveTest, FailedSaveRollsBackAndRecovers)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    Archive &tube = *created.archive;
    ASSERT_TRUE(tube.put("first", patternBytes(100, 9)).ok());
    const std::size_t pool_before = tube.poolSize();

    // The atomic writer cannot rename over a directory, so turning each
    // target into one simulates an unwritable destination.
    const std::string payload_name = "second";
    const auto payload = patternBytes(120, 10);
    for (const char *victim : {"/manifest.json", "/pool.fasta"}) {
        const std::string path = dir() + victim;
        const std::string saved = slurp(path);
        std::filesystem::remove(path);
        std::filesystem::create_directory(path);
        const auto failed = tube.put(payload_name, payload);
        EXPECT_EQ(failed.status, ArchiveStatus::IoError) << victim;
        // The in-memory archive rolled back: nothing half-stored.
        EXPECT_EQ(tube.objects().size(), 1u);
        EXPECT_EQ(tube.stat(payload_name), nullptr);
        EXPECT_EQ(tube.poolSize(), pool_before);
        std::filesystem::remove_all(path);
        spew(path, saved);
    }

    // With the obstruction gone the same put succeeds cleanly.
    const auto ok = tube.put(payload_name, payload);
    ASSERT_TRUE(ok.ok()) << ok.error;
    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    const GetResult got = tube.get(payload_name, retrieval);
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, payload);
}

TEST_F(ArchiveTest, ToleratesPcrOffTargetContamination)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    const auto a = patternBytes(150, 12);
    const auto b = patternBytes(150, 13);
    ASSERT_TRUE(created.archive->put("a", a).ok());
    ASSERT_TRUE(created.archive->put("b", b).ok());

    // Off-target leakage drags other objects' molecules into the PCR
    // product; primer preprocessing must still fence them out.
    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    retrieval.pcr_off_target = 0.05;
    const GetResult got = created.archive->get("a", retrieval);
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.data, a);
}

TEST_F(ArchiveTest, DnaManifestDecodeFailsCleanly)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    ASSERT_TRUE(created.archive->put("obj", patternBytes(80, 14)).ok());
    const std::string pool_path = dir() + "/pool.fasta";
    const std::string pool = slurp(pool_path);

    // Strip the pair-0 section: the archive still opens (objects are
    // intact) but the DNA manifest copy is gone.
    std::vector<std::string> kept;
    for (const std::string &record : fastaRecords(pool))
        if (record.find("pair=0\n") == std::string::npos)
            kept.push_back(record);
    spew(pool_path, joinRecords(kept));
    auto missing = Archive::open(dir());
    ASSERT_TRUE(missing.ok()) << missing.error;
    RetrievalConfig retrieval;
    retrieval.error_rate = 0.02;
    const auto no_copy = missing.archive->decodeManifestFromDna(retrieval);
    EXPECT_FALSE(no_copy.manifest.has_value());
    EXPECT_NE(no_copy.error.find("manifest molecules"), std::string::npos)
        << no_copy.error;

    // Garbage in the pair-0 section: decode fails, error says why.
    std::string garbled = joinRecords(kept);
    std::size_t index = kept.size();
    for (int i = 0; i < 3; ++i)
        garbled += ">m" + std::to_string(index++) + " pair=0\nACGTACGT\n";
    spew(pool_path, garbled);
    auto corrupt = Archive::open(dir());
    ASSERT_TRUE(corrupt.ok()) << corrupt.error;
    const auto bad_copy = corrupt.archive->decodeManifestFromDna(retrieval);
    EXPECT_FALSE(bad_copy.manifest.has_value());
    EXPECT_NE(bad_copy.error.find("failed to decode"), std::string::npos)
        << bad_copy.error;
}

TEST_F(ArchiveTest, ParallelAndSerialGetsAgree)
{
    auto created = Archive::create(dir(), smallParams());
    ASSERT_TRUE(created.ok()) << created.error;
    const auto payload = patternBytes(1100, 7);
    ASSERT_TRUE(created.archive->put("obj", payload, 4).ok());

    RetrievalConfig serial;
    serial.error_rate = 0.02;
    serial.seed = 77;
    serial.num_threads = 1;
    RetrievalConfig parallel = serial;
    parallel.num_threads = 4;

    const GetResult a = created.archive->get("obj", serial);
    const GetResult b = created.archive->get("obj", parallel);
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    // Per-shard seeds depend only on (seed, pair_id), so thread count
    // cannot change the result.
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.data, payload);
}
