/**
 * @file
 * Tests for the wetlab FASTQ preprocessing module (orientation fixing
 * and primer trimming, paper Section VIII).
 */

#include <gtest/gtest.h>

#include "simulator/iid_channel.hh"
#include "wetlab/preprocess.hh"

namespace dnastore
{
namespace
{

struct Fixture
{
    Fixture() : rng(11), lib(PrimerLibrary::design(rng, 4)), pair(lib.pairFor(0))
    {
    }

    Rng rng;
    PrimerLibrary lib;
    PrimerPair pair;
};

TEST(Preprocess, ForwardReadsPassThrough)
{
    Fixture f;
    std::vector<Strand> raw;
    std::vector<Strand> payloads;
    for (int i = 0; i < 20; ++i) {
        payloads.push_back(strand::random(f.rng, 80));
        raw.push_back(attachPrimers(f.pair, payloads.back()));
    }
    const auto result = preprocessReads(raw, f.pair);
    EXPECT_EQ(result.total, 20u);
    EXPECT_EQ(result.rejected, 0u);
    EXPECT_EQ(result.flipped, 0u);
    ASSERT_EQ(result.reads.size(), 20u);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(result.reads[i], payloads[i]);
}

TEST(Preprocess, ReverseOrientedReadsAreFlipped)
{
    Fixture f;
    std::vector<Strand> raw;
    std::vector<Strand> payloads;
    for (int i = 0; i < 20; ++i) {
        payloads.push_back(strand::random(f.rng, 80));
        raw.push_back(strand::reverseComplement(
            attachPrimers(f.pair, payloads.back())));
    }
    const auto result = preprocessReads(raw, f.pair);
    EXPECT_EQ(result.flipped, 20u);
    EXPECT_EQ(result.rejected, 0u);
    ASSERT_EQ(result.reads.size(), 20u);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(result.reads[i], payloads[i]);
}

TEST(Preprocess, MixedOrientationsBothRecovered)
{
    Fixture f;
    const Strand payload = strand::random(f.rng, 60);
    const Strand tagged = attachPrimers(f.pair, payload);
    const auto result = preprocessReads(
        {tagged, strand::reverseComplement(tagged)}, f.pair);
    ASSERT_EQ(result.reads.size(), 2u);
    EXPECT_EQ(result.reads[0], payload);
    EXPECT_EQ(result.reads[1], payload);
    EXPECT_EQ(result.flipped, 1u);
}

TEST(Preprocess, ForeignPrimersRejected)
{
    Fixture f;
    const auto other = f.lib.pairFor(1);
    std::vector<Strand> raw;
    for (int i = 0; i < 10; ++i)
        raw.push_back(attachPrimers(other, strand::random(f.rng, 60)));
    const auto result = preprocessReads(raw, f.pair);
    EXPECT_EQ(result.rejected, 10u);
    EXPECT_TRUE(result.reads.empty());
}

TEST(Preprocess, GarbageRejected)
{
    Fixture f;
    WetlabPreprocessConfig cfg;
    cfg.primer_max_edit = 2;
    std::vector<Strand> raw;
    for (int i = 0; i < 10; ++i)
        raw.push_back(strand::random(f.rng, 100));
    const auto result = preprocessReads(raw, f.pair, cfg);
    EXPECT_EQ(result.rejected, 10u);
}

TEST(Preprocess, SurvivesSequencingNoise)
{
    Fixture f;
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.05));
    std::vector<Strand> raw;
    for (int i = 0; i < 100; ++i) {
        const Strand tagged =
            attachPrimers(f.pair, strand::random(f.rng, 80));
        Strand read = channel.transmit(tagged, f.rng);
        if (i % 2 == 1)
            read = strand::reverseComplement(read);
        raw.push_back(read);
    }
    WetlabPreprocessConfig cfg;
    cfg.primer_max_edit = 5;
    const auto result = preprocessReads(raw, f.pair, cfg);
    // The overwhelming majority of noisy reads must survive
    // preprocessing with usable payloads.
    EXPECT_GT(result.reads.size(), 90u);
    EXPECT_GT(result.flipped, 40u);
    for (const auto &payload : result.reads)
        EXPECT_NEAR(static_cast<double>(payload.size()), 80.0, 12.0);
}

TEST(Preprocess, TooShortReadsRejected)
{
    Fixture f;
    const auto result = preprocessReads({"ACGT"}, f.pair);
    EXPECT_EQ(result.rejected, 1u);
}

TEST(Preprocess, FastqPathMatchesReadPath)
{
    Fixture f;
    const Strand payload = strand::random(f.rng, 70);
    const Strand tagged = attachPrimers(f.pair, payload);
    const auto fastq = readsToFastq({tagged}, "test");
    ASSERT_EQ(fastq.size(), 1u);
    EXPECT_EQ(fastq[0].id, "test_0");
    EXPECT_EQ(fastq[0].sequence.size(), fastq[0].quality.size());

    const auto result = preprocessFastq(fastq, f.pair);
    ASSERT_EQ(result.reads.size(), 1u);
    EXPECT_EQ(result.reads[0], payload);
}

} // namespace
} // namespace dnastore
