// Report serialisation: the canonical metrics JSON against a checked-in
// golden file (byte-stable schema), the run-report document structure,
// and JsonWriter escaping rules.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/run_report.hh"
#include "obs/json.hh"
#include "obs/report.hh"

#ifndef DNASTORE_OBS_GOLDEN_DIR
#error "DNASTORE_OBS_GOLDEN_DIR must point at tests/obs"
#endif

namespace
{

using dnastore::PipelineResult;
using dnastore::RunInfo;
using dnastore::runReportJson;
using dnastore::obs::GaugeSnapshot;
using dnastore::obs::HistogramSnapshot;
using dnastore::obs::JsonWriter;
using dnastore::obs::MetricsSnapshot;
using dnastore::obs::jsonEscape;
using dnastore::obs::metricsJson;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
stripTrailingWhitespace(std::string text)
{
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

/** The fixed snapshot the golden file was generated from. */
MetricsSnapshot
goldenSnapshot()
{
    MetricsSnapshot snap;
    snap.counters["decoding.rs_rows_total"] = 30;
    snap.counters["pipeline.runs_total"] = 1;
    snap.gauges["util.thread_pool.queue_depth"] = GaugeSnapshot{2.0, 7.0};
    HistogramSnapshot hist;
    hist.upper_bounds = {0.5, 1.0};
    hist.counts = {3, 1, 0};
    hist.total_count = 4;
    hist.sum = 2.25;
    snap.histograms["pipeline.task_seconds"] = hist;
    return snap;
}

TEST(MetricsJson, MatchesGoldenFile)
{
    const std::string golden = stripTrailingWhitespace(
        readFile(std::string(DNASTORE_OBS_GOLDEN_DIR) +
                 "/golden_metrics.json"));
    ASSERT_FALSE(golden.empty());
    // Byte-for-byte: key order, number formatting and schema framing
    // are all part of the contract (docs/OBSERVABILITY.md).  If this
    // fails after an intentional schema change, bump kSchemaVersion and
    // regenerate the golden file.
    EXPECT_EQ(metricsJson(goldenSnapshot()), golden);
}

TEST(MetricsJson, IsDeterministic)
{
    EXPECT_EQ(metricsJson(goldenSnapshot()), metricsJson(goldenSnapshot()));
}

TEST(RunReportJson, ContainsEverySection)
{
    PipelineResult result;
    result.encoded_strands = 42;
    result.report.ok = true;
    RunInfo info;
    info["tool"] = "test";
    info["seed"] = "7";
    const std::string json = runReportJson(result, info);

    EXPECT_NE(json.find("\"schema\":\"dnastore.run_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(json.find("\"run\":{\"seed\":\"7\",\"tool\":\"test\"}"),
              std::string::npos);
    for (const char *section :
         {"\"stages\":", "\"pipeline\":", "\"faults\":",
          "\"recovery_attempts\":", "\"errors\":", "\"metrics\":",
          "\"contention\":", "\"alloc\":"})
        EXPECT_NE(json.find(section), std::string::npos) << section;
    for (const char *stage :
         {"\"encoding\":", "\"simulation\":", "\"clustering\":",
          "\"reconstruction\":", "\"decoding\":", "\"total_seconds\":",
          "\"total_cpu_seconds\":"})
        EXPECT_NE(json.find(stage), std::string::npos) << stage;
    // schema_version 2: every stage object carries CPU attribution.
    for (const char *field :
         {"\"cpu_seconds\":", "\"utilization\":", "\"sample_every\":",
          "\"mutexes\":"})
        EXPECT_NE(json.find(field), std::string::npos) << field;
    EXPECT_NE(json.find("\"encoded_strands\":42"), std::string::npos);
    EXPECT_NE(json.find("\"decode_ok\":true"), std::string::npos);
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonWriter, BuildsNestedStructures)
{
    JsonWriter json;
    json.beginObject();
    json.key("list");
    json.beginArray();
    json.value(std::uint64_t{1});
    json.value(false);
    json.value("x");
    json.endArray();
    json.key("obj");
    json.beginObject();
    json.key("pi");
    json.value(0.25);
    json.endObject();
    json.endObject();
    EXPECT_EQ(json.text(),
              "{\"list\":[1,false,\"x\"],\"obj\":{\"pi\":0.25}}");
}

} // namespace
