// Metrics registry: handle stability, atomicity under parallelFor,
// histogram bucket edges, snapshot determinism and delta semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "util/thread_pool.hh"

namespace
{

using dnastore::ThreadPool;
using dnastore::obs::Counter;
using dnastore::obs::FixedHistogram;
using dnastore::obs::Gauge;
using dnastore::obs::MetricsRegistry;
using dnastore::obs::MetricsSnapshot;

TEST(MetricsRegistry, HandlesAreStableAndNamed)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("alpha");
    Counter &b = reg.counter("beta");
    EXPECT_NE(&a, &b);
    // Same name -> same handle, even after other registrations.
    reg.gauge("gamma");
    EXPECT_EQ(&a, &reg.counter("alpha"));
    a.add(3);
    EXPECT_EQ(reg.counter("alpha").value(), 3u);
    EXPECT_EQ(reg.counter("beta").value(), 0u);
}

TEST(MetricsRegistry, CounterIsAtomicUnderParallelFor)
{
    MetricsRegistry reg;
    Counter &hits = reg.counter("hits");
    constexpr std::size_t kIterations = 20000;
    ThreadPool pool(4);
    pool.parallelFor(0, kIterations, [&](std::size_t) { hits.add(); });
    EXPECT_EQ(hits.value(), kIterations);
}

TEST(MetricsRegistry, HistogramIsAtomicUnderParallelFor)
{
    MetricsRegistry reg;
    FixedHistogram &hist = reg.histogram("lat", {1.0, 2.0, 3.0});
    constexpr std::size_t kIterations = 12000;
    ThreadPool pool(4);
    pool.parallelFor(0, kIterations, [&](std::size_t i) {
        hist.observe(static_cast<double>(i % 4) + 0.5);
    });
    EXPECT_EQ(hist.totalCount(), kIterations);
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < hist.numBuckets(); ++b)
        total += hist.bucketCount(b);
    EXPECT_EQ(total, kIterations);
    // i % 4 is uniform, so each bucket (incl. overflow at 3.5) gets 1/4.
    for (std::size_t b = 0; b < hist.numBuckets(); ++b)
        EXPECT_EQ(hist.bucketCount(b), kIterations / 4) << "bucket " << b;
}

TEST(MetricsRegistry, HistogramBucketEdges)
{
    MetricsRegistry reg;
    FixedHistogram &hist = reg.histogram("edges", {10.0, 20.0});
    ASSERT_EQ(hist.numBuckets(), 3u); // two bounds + overflow

    hist.observe(10.0); // on the boundary: v <= bound -> first bucket
    EXPECT_EQ(hist.bucketCount(0), 1u);
    hist.observe(10.5);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    hist.observe(20.0);
    EXPECT_EQ(hist.bucketCount(1), 2u);
    hist.observe(20.0001); // above the last bound -> overflow bucket
    EXPECT_EQ(hist.bucketCount(2), 1u);
    hist.observe(-5.0); // below everything -> first bucket
    EXPECT_EQ(hist.bucketCount(0), 2u);

    EXPECT_EQ(hist.totalCount(), 5u);
    EXPECT_NEAR(hist.sum(), 10.0 + 10.5 + 20.0 + 20.0001 - 5.0, 1e-9);
}

TEST(MetricsRegistry, HistogramRejectsBadBounds)
{
    MetricsRegistry reg;
    EXPECT_THROW(FixedHistogram({}), std::invalid_argument);
    EXPECT_THROW(FixedHistogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(FixedHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeTracksValueAndMax)
{
    MetricsRegistry reg;
    Gauge &depth = reg.gauge("depth");
    depth.set(3.0);
    depth.set(9.0);
    depth.set(2.0);
    EXPECT_EQ(depth.value(), 2.0);
    EXPECT_EQ(depth.max(), 9.0);
}

TEST(MetricsSnapshot, IsDeterministicAndComplete)
{
    MetricsRegistry reg;
    reg.counter("z_last").add(1);
    reg.counter("a_first").add(2);
    reg.gauge("mid").set(5.0);
    reg.histogram("hist", {1.0}).observe(0.5);

    const MetricsSnapshot snap1 = reg.snapshot();
    const MetricsSnapshot snap2 = reg.snapshot();
    EXPECT_EQ(snap1.counters, snap2.counters);
    ASSERT_EQ(snap1.counters.size(), 2u);
    // std::map iteration: sorted names regardless of insert order.
    EXPECT_EQ(snap1.counters.begin()->first, "a_first");
    EXPECT_EQ(snap1.gauges.at("mid").value, 5.0);
    EXPECT_EQ(snap1.histograms.at("hist").total_count, 1u);
    EXPECT_FALSE(snap1.empty());
}

TEST(MetricsSnapshot, DeltaIsolatesOneRun)
{
    MetricsRegistry reg;
    reg.counter("runs").add(10);
    reg.histogram("h", {1.0, 2.0}).observe(0.5);
    const MetricsSnapshot before = reg.snapshot();

    reg.counter("runs").add(4);
    reg.counter("fresh").add(7); // not present in `before`
    reg.gauge("level").set(3.0);
    reg.histogram("h", {}).observe(1.5);

    const MetricsSnapshot delta = reg.snapshot().delta(before);
    EXPECT_EQ(delta.counters.at("runs"), 4u);
    EXPECT_EQ(delta.counters.at("fresh"), 7u);
    // Gauges are levels, not totals: passed through unchanged.
    EXPECT_EQ(delta.gauges.at("level").value, 3.0);
    EXPECT_EQ(delta.histograms.at("h").total_count, 1u);
    EXPECT_EQ(delta.histograms.at("h").counts[0], 0u);
    EXPECT_EQ(delta.histograms.at("h").counts[1], 1u);
}

TEST(MetricsRegistry, ResetAllZeroesEverything)
{
    MetricsRegistry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(2.0);
    reg.histogram("h", {1.0}).observe(0.5);
    reg.resetAll();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.gauge("g").max(), 0.0);
    EXPECT_EQ(reg.histogram("h", {}).totalCount(), 0u);
}

TEST(MetricsRegistry, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&dnastore::obs::metrics(), &dnastore::obs::metrics());
}

TEST(MetricsRegistry, BucketLadders)
{
    const std::vector<double> latency =
        dnastore::obs::latencyBucketsSeconds();
    ASSERT_FALSE(latency.empty());
    for (std::size_t i = 1; i < latency.size(); ++i)
        EXPECT_LT(latency[i - 1], latency[i]);
    const std::vector<double> percent = dnastore::obs::percentBuckets();
    ASSERT_FALSE(percent.empty());
    EXPECT_EQ(percent.front(), 0.0);
    EXPECT_EQ(percent.back(), 90.0);
}

} // namespace
