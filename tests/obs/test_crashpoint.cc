/**
 * @file
 * Crash-point contract (obs/crashpoint.hh): spec parsing, Nth-hit and
 * probability triggers, the disarmed fast path, and the IO-fault
 * actions threaded through obs::writeTextFile.  Kill/ShortWrite are
 * exercised as gtest death tests asserting the dedicated exit code, and
 * the parent inspects the directory afterwards — the truncated staging
 * file a mid-write death leaves behind is exactly what `archive fsck`
 * must sweep.
 */

#include "obs/crashpoint.hh"
#include "obs/report.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
namespace crash = dnastore::obs::crash;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class CrashPointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        crash::reset();
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("crashpoint_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        crash::reset();
        fs::remove_all(dir_);
    }

    std::string path(const char *name) const
    {
        return (dir_ / name).string();
    }

    /** Names of staging files ("<base>.tmp.<pid>.<n>") left in dir_. */
    std::vector<std::string>
    stagingFiles() const
    {
        std::vector<std::string> found;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            if (name.find(".tmp.") != std::string::npos)
                found.push_back(entry.path().string());
        }
        return found;
    }

    fs::path dir_;
};

} // namespace

TEST_F(CrashPointTest, DisarmedByDefault)
{
    EXPECT_EQ(crash::hit("archive.save.between"), crash::Action::None);
    EXPECT_EQ(crash::hitCount("archive.save.between"), 0u);
}

TEST_F(CrashPointTest, MalformedSpecsRejectedAndDisarm)
{
    std::string error;
    EXPECT_FALSE(crash::configure("no-equals-sign", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(crash::configure("p=badaction", &error));
    EXPECT_FALSE(crash::configure("p=kill@", &error));
    EXPECT_FALSE(crash::configure("p=kill@p1.5", &error));
    EXPECT_FALSE(crash::configure("seed=notanumber;p=kill", &error));
    // A failed configure leaves everything disarmed.
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
}

TEST_F(CrashPointTest, EmptySpecDisarms)
{
    ASSERT_TRUE(crash::configure("p=werror"));
    EXPECT_EQ(crash::hit("p"), crash::Action::WriteError);
    ASSERT_TRUE(crash::configure(""));
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
}

TEST_F(CrashPointTest, NthHitTriggerFiresExactlyOnce)
{
    ASSERT_TRUE(crash::configure("p=werror@3"));
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
    EXPECT_EQ(crash::hit("p"), crash::Action::WriteError);
    EXPECT_EQ(crash::hit("p"), crash::Action::None); // Nth only, not Nth+
    EXPECT_EQ(crash::hitCount("p"), 4u);
    // Unrelated points are untouched.
    EXPECT_EQ(crash::hit("q"), crash::Action::None);
}

TEST_F(CrashPointTest, ProbabilityTriggerIsSeededAndDeterministic)
{
    const auto drawSequence = [](std::uint64_t seed) {
        std::string spec = "seed=" + std::to_string(seed) +
                           ";p=werror@p0.5";
        EXPECT_TRUE(crash::configure(spec));
        std::vector<bool> fires;
        for (int i = 0; i < 64; ++i)
            fires.push_back(crash::hit("p") ==
                            crash::Action::WriteError);
        return fires;
    };
    const auto first = drawSequence(7);
    const auto again = drawSequence(7);
    const auto other = drawSequence(8);
    EXPECT_EQ(first, again);
    EXPECT_NE(first, other);
    // p0.5 over 64 trials: both outcomes must occur.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(CrashPointTest, ConfigureFromEnvArmsAndEmptyDisarms)
{
    ::setenv("DNASTORE_CRASHPOINTS", "p=renameerror@2", 1);
    ASSERT_TRUE(crash::configureFromEnv());
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
    EXPECT_EQ(crash::hit("p"), crash::Action::RenameError);

    ::setenv("DNASTORE_CRASHPOINTS", "", 1);
    ASSERT_TRUE(crash::configureFromEnv());
    EXPECT_EQ(crash::hit("p"), crash::Action::None);

    ::setenv("DNASTORE_CRASHPOINTS", "malformed", 1);
    EXPECT_FALSE(crash::configureFromEnv());
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
    ::unsetenv("DNASTORE_CRASHPOINTS");
}

TEST_F(CrashPointTest, ActionNamesAreStable)
{
    EXPECT_STREQ(crash::actionName(crash::Action::None), "none");
    EXPECT_STREQ(crash::actionName(crash::Action::Kill), "kill");
    EXPECT_STREQ(crash::actionName(crash::Action::ShortWrite), "short");
    EXPECT_STREQ(crash::actionName(crash::Action::WriteError), "werror");
    EXPECT_STREQ(crash::actionName(crash::Action::RenameError),
                 "renameerror");
}

TEST_F(CrashPointTest, WriteErrorFailsWriteCleanly)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "precious"));

    ASSERT_TRUE(crash::configure("obs.write.body=werror"));
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "clobber"));
    crash::reset();

    // Previous content intact, no staging file left behind.
    EXPECT_EQ(slurp(target), "precious\n");
    EXPECT_TRUE(stagingFiles().empty());
}

TEST_F(CrashPointTest, OpenWriteErrorFailsCleanly)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(crash::configure("obs.write.open=werror"));
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "text"));
    crash::reset();
    EXPECT_FALSE(fs::exists(target));
    EXPECT_TRUE(stagingFiles().empty());
}

TEST_F(CrashPointTest, RenameErrorFailsWriteCleanly)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "precious"));

    ASSERT_TRUE(crash::configure("obs.write.rename=renameerror"));
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "clobber"));
    crash::reset();

    EXPECT_EQ(slurp(target), "precious\n");
    EXPECT_TRUE(stagingFiles().empty());
}

TEST_F(CrashPointTest, KillDiesWithDedicatedExitCode)
{
    ASSERT_TRUE(crash::configure("p=kill@2"));
    EXPECT_EQ(crash::hit("p"), crash::Action::None);
    EXPECT_EXIT((void)crash::hit("p"),
                ::testing::ExitedWithCode(crash::kCrashExitCode), "");
}

TEST_F(CrashPointTest, ShortWriteDiesLeavingTruncatedStagingFile)
{
    const std::string target = path("report.json");
    const std::string body(4096, 'x');

    ASSERT_TRUE(crash::configure("obs.write.body=short"));
    EXPECT_EXIT((void)dnastore::obs::writeTextFile(target, body),
                ::testing::ExitedWithCode(crash::kCrashExitCode), "");
    crash::reset();

    // The death-test child died mid-write: the target was never
    // published and a truncated staging file survives — the orphan
    // `archive fsck` exists to sweep.
    EXPECT_FALSE(fs::exists(target));
    const auto strays = stagingFiles();
    ASSERT_EQ(strays.size(), 1u);
    const std::string staged = slurp(strays[0]);
    EXPECT_LT(staged.size(), body.size());
}

TEST_F(CrashPointTest, KillAtRenameLeavesCompleteStagingFile)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(crash::configure("obs.write.rename=kill"));
    EXPECT_EXIT((void)dnastore::obs::writeTextFile(target, "done"),
                ::testing::ExitedWithCode(crash::kCrashExitCode), "");
    crash::reset();

    EXPECT_FALSE(fs::exists(target));
    const auto strays = stagingFiles();
    ASSERT_EQ(strays.size(), 1u);
    EXPECT_EQ(slurp(strays[0]), "done\n");
}
