/**
 * @file
 * Sampling allocation profiler: stage-tag attribution through the
 * replacement operator new, sampling scale-up, delta semantics, and
 * the disabled default.  Every test restores the disabled state.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/alloc_profiler.hh"
#include "obs/stage_tag.hh"

namespace
{

namespace alloc = dnastore::obs::alloc;
using dnastore::obs::StageTagScope;
using dnastore::obs::currentStageTag;

/** RAII guard: every test leaves the profiler disarmed and zeroed. */
struct AllocProfilerReset
{
    AllocProfilerReset() { alloc::reset(); }
    ~AllocProfilerReset() { alloc::reset(); }
};

/** Snapshot entry for @p stage, nullptr when absent. */
const alloc::StageAllocSnapshot *
findStage(const alloc::AllocSnapshot &snapshot, const char *stage)
{
    for (const alloc::StageAllocSnapshot &s : snapshot.stages)
        if (s.stage == stage)
            return &s;
    return nullptr;
}

/** Heap-allocate @p count blocks of @p bytes, defeating elision. */
void
churn(std::size_t count, std::size_t bytes)
{
    std::vector<std::unique_ptr<char[]>> blocks;
    blocks.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        blocks.push_back(std::make_unique<char[]>(bytes));
}

TEST(AllocProfiler, DisabledByDefaultRecordsNothing)
{
    const AllocProfilerReset guard;
    EXPECT_FALSE(alloc::enabled());
    {
        StageTagScope tag("test.alloc_disabled");
        churn(16, 1024);
    }
    const alloc::AllocSnapshot snapshot = alloc::allocSnapshot();
    EXPECT_FALSE(snapshot.enabled);
    EXPECT_EQ(findStage(snapshot, "test.alloc_disabled"), nullptr);
}

TEST(AllocProfiler, AttributesBytesToActiveStageTag)
{
    const AllocProfilerReset guard;
    alloc::enable(1);
    ASSERT_TRUE(alloc::enabled());
    {
        StageTagScope tag("test.alloc_stage");
        churn(32, 4096);
    }
    alloc::disable();

    const alloc::AllocSnapshot snapshot = alloc::allocSnapshot();
    const alloc::StageAllocSnapshot *s =
        findStage(snapshot, "test.alloc_stage");
    ASSERT_NE(s, nullptr);
    // At least the 32 payload blocks (the vector's buffer and libc
    // internals may add more).
    EXPECT_GE(s->sampled_allocs, 32u);
    EXPECT_GE(s->sampled_bytes, 32u * 4096u);
    // sample_every == 1: estimates equal samples.
    EXPECT_EQ(s->estimated_allocs, s->sampled_allocs);
    EXPECT_EQ(s->estimated_bytes, s->sampled_bytes);
}

TEST(AllocProfiler, UntaggedAllocationsCollectUnderUntagged)
{
    const AllocProfilerReset guard;
    ASSERT_STREQ(currentStageTag(), "");
    alloc::enable(1);
    churn(8, 512);
    alloc::disable();

    const alloc::AllocSnapshot snapshot = alloc::allocSnapshot();
    const alloc::StageAllocSnapshot *s = findStage(snapshot, "untagged");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->sampled_allocs, 8u);
}

TEST(AllocProfiler, SamplingScalesEstimatesUp)
{
    const AllocProfilerReset guard;
    alloc::enable(4);
    {
        StageTagScope tag("test.alloc_sampled");
        churn(400, 256);
    }
    alloc::disable();

    const alloc::AllocSnapshot snapshot = alloc::allocSnapshot();
    EXPECT_EQ(snapshot.sample_every, 4u);
    const alloc::StageAllocSnapshot *s =
        findStage(snapshot, "test.alloc_sampled");
    ASSERT_NE(s, nullptr);
    // Every 4th allocation recorded: ~100 samples for 400+ allocs.
    EXPECT_GE(s->sampled_allocs, 50u);
    EXPECT_LT(s->sampled_allocs, 400u);
    EXPECT_EQ(s->estimated_allocs, s->sampled_allocs * 4);
    EXPECT_EQ(s->estimated_bytes, s->sampled_bytes * 4);
}

TEST(AllocProfiler, DeltaIsolatesARegionOfInterest)
{
    const AllocProfilerReset guard;
    alloc::enable(1);
    {
        StageTagScope tag("test.alloc_delta");
        churn(10, 128);
    }
    const alloc::AllocSnapshot before = alloc::allocSnapshot();
    const alloc::AllocSnapshot quiet =
        alloc::allocSnapshot().delta(before);
    EXPECT_EQ(findStage(quiet, "test.alloc_delta"), nullptr);

    {
        StageTagScope tag("test.alloc_delta");
        churn(20, 128);
    }
    alloc::disable();
    const alloc::AllocSnapshot active =
        alloc::allocSnapshot().delta(before);
    const alloc::StageAllocSnapshot *s =
        findStage(active, "test.alloc_delta");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->sampled_allocs, 20u);
    EXPECT_LT(s->sampled_allocs, 100u);
}

TEST(AllocProfiler, StageTagScopeRestoresOuterTag)
{
    ASSERT_STREQ(currentStageTag(), "");
    {
        StageTagScope outer("test.outer");
        EXPECT_STREQ(currentStageTag(), "test.outer");
        {
            StageTagScope inner("test.inner");
            EXPECT_STREQ(currentStageTag(), "test.inner");
        }
        EXPECT_STREQ(currentStageTag(), "test.outer");
    }
    EXPECT_STREQ(currentStageTag(), "");
}

} // namespace
