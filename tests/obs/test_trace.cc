// Span tracing and the Chrome trace_event exporter: null-sink fast
// path, nesting, cross-thread collection, and well-formed JSON output.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.hh"
#include "obs/trace_export.hh"

namespace
{

using dnastore::obs::Span;
using dnastore::obs::TraceEvent;
using dnastore::obs::TraceSink;
using dnastore::obs::chromeTraceJson;
using dnastore::obs::installTraceSink;
using dnastore::obs::traceSink;

/** Installs a sink for the test body, uninstalls on scope exit. */
class SinkScope
{
  public:
    explicit SinkScope(TraceSink &sink) { installTraceSink(&sink); }
    SinkScope(const SinkScope &) = delete;
    SinkScope &operator=(const SinkScope &) = delete;
    ~SinkScope() { installTraceSink(nullptr); }
};

TEST(Span, InactiveWithoutSink)
{
    installTraceSink(nullptr);
    Span span("test/no_sink");
    EXPECT_FALSE(span.active());
    span.end(); // must be a harmless no-op
}

TEST(Span, RecordsNestedSpansInOrder)
{
    // Sleeps separate the start timestamps so the sort order is
    // deterministic even on a coarse microsecond clock.
    const auto tick = [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    };
    TraceSink sink;
    {
        SinkScope scope(sink);
        Span outer("test/outer");
        EXPECT_TRUE(outer.active());
        tick();
        {
            Span middle("test/middle");
            tick();
            Span inner("test/inner");
            tick();
        }
        // Nothing flushes until the outermost span closes.
        EXPECT_EQ(sink.size(), 0u);
    }
    ASSERT_EQ(sink.size(), 3u);

    const std::vector<TraceEvent> events = sink.events();
    // events() sorts by start time, parents (longer) before children on
    // ties, so the hierarchy reads outer -> middle -> inner.
    EXPECT_STREQ(events[0].name, "test/outer");
    EXPECT_STREQ(events[1].name, "test/middle");
    EXPECT_STREQ(events[2].name, "test/inner");
    // Containment: every child starts no earlier and ends no later
    // than its parent — this is what trace viewers nest on.
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
        EXPECT_LE(events[i].ts_us + events[i].dur_us,
                  events[i - 1].ts_us + events[i - 1].dur_us);
    }
    // All three ran on the same thread.
    EXPECT_EQ(events[0].tid, events[1].tid);
    EXPECT_EQ(events[1].tid, events[2].tid);
}

TEST(Span, EndIsIdempotentAndEager)
{
    TraceSink sink;
    SinkScope scope(sink);
    Span span("test/manual_end");
    span.end();
    EXPECT_EQ(sink.size(), 1u);
    span.end(); // second end must not double-record
    EXPECT_EQ(sink.size(), 1u);
} // destructor after end(): still exactly one event

TEST(Span, CollectsAcrossThreads)
{
    TraceSink sink;
    {
        SinkScope scope(sink);
        Span main_span("test/main");
        std::thread worker([] { Span span("test/worker"); });
        worker.join();
    }
    ASSERT_EQ(sink.size(), 2u);
    const std::vector<TraceEvent> events = sink.events();
    EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(ChromeTrace, EmitsWellFormedDocument)
{
    TraceSink sink;
    {
        SinkScope scope(sink);
        Span outer("test/outer");
        Span inner("test/inner");
    }
    const std::string json = chromeTraceJson(sink);

    // Structural spot-checks a JSON parser would rely on.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test/outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test/inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"dnastore\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    // Two complete events -> two "ph":"X" markers.
    std::size_t count = 0;
    for (std::size_t pos = json.find("\"ph\":\"X\"");
         pos != std::string::npos; pos = json.find("\"ph\":\"X\"", pos + 1))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(ChromeTrace, EmptySinkYieldsEmptyEventArray)
{
    const TraceSink sink;
    const std::string json = chromeTraceJson(sink);
    EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(TraceSink, InstallUninstall)
{
    TraceSink sink;
    installTraceSink(&sink);
    EXPECT_EQ(traceSink(), &sink);
    installTraceSink(nullptr);
    EXPECT_EQ(traceSink(), nullptr);
}

} // namespace
