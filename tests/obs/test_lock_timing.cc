/**
 * @file
 * Sampled lock-contention timing: the tri-state gate, guaranteed
 * contended waits through the profiled Mutex::lock() path, a seeded
 * two-thread storm, and snapshot delta semantics.  Every test restores
 * the disabled state so profiling never leaks into other tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/lock_timing.hh"
#include "util/sync.hh"

namespace
{

namespace locktime = dnastore::obs::locktime;
using dnastore::Mutex;
using dnastore::MutexLock;

/** RAII guard: every test leaves the profiler disarmed and zeroed. */
struct LockTimingReset
{
    LockTimingReset() { locktime::reset(); }
    ~LockTimingReset() { locktime::reset(); }
};

/** Snapshot entry for @p name, nullptr when absent. */
const locktime::MutexWaitSnapshot *
findMutex(const locktime::ContentionSnapshot &snapshot, const char *name)
{
    for (const locktime::MutexWaitSnapshot &m : snapshot.mutexes)
        if (m.name == name)
            return &m;
    return nullptr;
}

/**
 * Force one deterministic contended wait on @p mutex: the main thread
 * holds it while a second thread blocks in lock().
 */
void
forceContendedWait(Mutex &mutex)
{
    std::atomic<bool> thread_started{false};
    std::thread blocked;
    {
        MutexLock hold(mutex);
        blocked = std::thread([&] {
            thread_started.store(true);
            MutexLock lock(mutex);
        });
        while (!thread_started.load())
            std::this_thread::yield();
        // The peer is at (or arriving at) the contended lock(); give it
        // time to fail try_lock and start timing the blocking acquire.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    blocked.join();
}

/** Recorded wait count for @p name, 0 when the mutex has no slot yet. */
std::uint64_t
recordedWaits(const char *name)
{
    const locktime::MutexWaitSnapshot *m =
        findMutex(locktime::contentionSnapshot(), name);
    return m == nullptr ? 0 : m->total_count;
}

/**
 * Drive contended waits on @p mutex until @p min_count are recorded.
 * A single forceContendedWait round can theoretically miss (the blocked
 * thread may be descheduled past the holder's release and win its
 * try_lock), so retry with a generous cap instead of asserting on one
 * racy round.
 */
void
stormUntilRecorded(Mutex &mutex, const char *name,
                   std::uint64_t min_count)
{
    for (int round = 0; round < 200; ++round) {
        if (recordedWaits(name) >= min_count)
            return;
        forceContendedWait(mutex);
    }
}

TEST(LockTiming, DisabledByDefaultAndRecordsNothing)
{
    const LockTimingReset guard;
    EXPECT_FALSE(locktime::enabled());

    static Mutex mutex{"test.lock_timing_disabled"};
    forceContendedWait(mutex);

    const locktime::ContentionSnapshot snapshot =
        locktime::contentionSnapshot();
    EXPECT_FALSE(snapshot.enabled);
    EXPECT_EQ(findMutex(snapshot, "test.lock_timing_disabled"), nullptr);
}

TEST(LockTiming, RecordsContendedWaitByMutexName)
{
    const LockTimingReset guard;
    locktime::enable(1);
    ASSERT_TRUE(locktime::enabled());

    static Mutex mutex{"test.lock_timing_contended"};
    stormUntilRecorded(mutex, "test.lock_timing_contended", 1);

    const locktime::ContentionSnapshot snapshot =
        locktime::contentionSnapshot();
    EXPECT_TRUE(snapshot.enabled);
    EXPECT_EQ(snapshot.sample_every, 1u);
    const locktime::MutexWaitSnapshot *m =
        findMutex(snapshot, "test.lock_timing_contended");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->total_count, 1u);
    // The blocked thread waited ~5ms; the sum must reflect a real wait,
    // and the histogram must carry bounds+1 buckets summing to count.
    EXPECT_GT(m->sum_seconds, 0.0);
    EXPECT_EQ(m->counts.size(),
              locktime::waitBucketBoundsSeconds().size() + 1);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : m->counts)
        bucket_total += c;
    EXPECT_EQ(bucket_total, m->total_count);
}

TEST(LockTiming, UncontendedLocksAreNotRecorded)
{
    const LockTimingReset guard;
    locktime::enable(1);

    static Mutex mutex{"test.lock_timing_uncontended"};
    for (int i = 0; i < 100; ++i) {
        MutexLock lock(mutex);
    }

    const locktime::ContentionSnapshot snapshot =
        locktime::contentionSnapshot();
    // try_lock succeeds every time, so the profiled path never fires.
    EXPECT_EQ(findMutex(snapshot, "test.lock_timing_uncontended"),
              nullptr);
}

TEST(LockTiming, TwoThreadStormAccumulatesWaits)
{
    const LockTimingReset guard;
    locktime::enable(1);

    static Mutex mutex{"test.lock_timing_storm"};
    constexpr std::uint64_t kWaits = 8;
    stormUntilRecorded(mutex, "test.lock_timing_storm", kWaits);

    const locktime::ContentionSnapshot snapshot =
        locktime::contentionSnapshot();
    const locktime::MutexWaitSnapshot *m =
        findMutex(snapshot, "test.lock_timing_storm");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->total_count, kWaits);
    // Each wait blocked for ~5ms, so the aggregate is well clear of 0
    // and the per-wait mean lands in a plausible bucket range.
    EXPECT_GT(m->sum_seconds, 0.001);
}

TEST(LockTiming, DeltaDropsQuietMutexesAndSubtracts)
{
    const LockTimingReset guard;
    locktime::enable(1);

    static Mutex mutex{"test.lock_timing_delta"};
    stormUntilRecorded(mutex, "test.lock_timing_delta", 1);
    const locktime::ContentionSnapshot before =
        locktime::contentionSnapshot();
    const locktime::ContentionSnapshot quiet =
        locktime::contentionSnapshot().delta(before);
    EXPECT_EQ(findMutex(quiet, "test.lock_timing_delta"), nullptr);

    stormUntilRecorded(mutex, "test.lock_timing_delta",
                       recordedWaits("test.lock_timing_delta") + 1);
    const locktime::ContentionSnapshot active =
        locktime::contentionSnapshot().delta(before);
    const locktime::MutexWaitSnapshot *m =
        findMutex(active, "test.lock_timing_delta");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->total_count, 1u);
}

TEST(LockTiming, SamplingIntervalIsReported)
{
    const LockTimingReset guard;
    locktime::enable(8);
    EXPECT_EQ(locktime::sampleEvery(), 8u);
    EXPECT_EQ(locktime::contentionSnapshot().sample_every, 8u);
    locktime::disable();
    EXPECT_FALSE(locktime::enabled());
}

} // namespace
