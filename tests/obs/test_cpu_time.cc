/**
 * @file
 * Per-thread CPU-time accounting: the raw clock, the ThreadCpuTimer,
 * and the cpu_us field spans record into the trace sink — including
 * spans closed on worker threads.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/cpu_time.hh"
#include "obs/span.hh"

namespace
{

using dnastore::obs::Span;
using dnastore::obs::ThreadCpuTimer;
using dnastore::obs::TraceEvent;
using dnastore::obs::TraceSink;
using dnastore::obs::installTraceSink;
using dnastore::obs::threadCpuClockAvailable;
using dnastore::obs::threadCpuNanos;

/** Burn CPU until the wall clock has advanced by @p ms. */
void
busyWaitMillis(int ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < deadline)
        sink = sink + 1;
}

TEST(ThreadCpuTime, ClockIsMonotonic)
{
    if (!threadCpuClockAvailable())
        GTEST_SKIP() << "CLOCK_THREAD_CPUTIME_ID not available";
    const std::uint64_t a = threadCpuNanos();
    busyWaitMillis(2);
    const std::uint64_t b = threadCpuNanos();
    EXPECT_GE(b, a);
}

TEST(ThreadCpuTime, BusyWorkDoesNotExceedWall)
{
    if (!threadCpuClockAvailable())
        GTEST_SKIP() << "CLOCK_THREAD_CPUTIME_ID not available";
    ThreadCpuTimer timer;
    const auto wall_start = std::chrono::steady_clock::now();
    busyWaitMillis(20);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const double cpu = timer.seconds();
    EXPECT_GT(cpu, 0.0);
    // A single thread cannot burn more CPU than wall time; allow 20%
    // slop for clock-granularity skew between the two clocks.
    EXPECT_LE(cpu, wall * 1.2 + 0.005);
}

TEST(ThreadCpuTime, SleepAccruesLittleCpu)
{
    if (!threadCpuClockAvailable())
        GTEST_SKIP() << "CLOCK_THREAD_CPUTIME_ID not available";
    ThreadCpuTimer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Sleeping is the canonical cpu << wall case the attribution layer
    // exists to expose; generous bound to stay robust on loaded CI.
    EXPECT_LT(timer.seconds(), 0.040);
}

TEST(ThreadCpuTime, SpansRecordCpuMicros)
{
    TraceSink sink;
    installTraceSink(&sink);
    {
        Span span("test/busy");
        busyWaitMillis(10);
    }
    {
        Span span("test/sleepy");
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    installTraceSink(nullptr);

    const std::vector<TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    for (const TraceEvent &event : events) {
        // cpu_us is bounded by the span's wall duration (plus clock
        // granularity slop) on a single thread.
        EXPECT_LE(event.cpu_us, event.dur_us + event.dur_us / 5 + 2000)
            << event.name;
    }
    if (threadCpuClockAvailable()) {
        const TraceEvent &busy = events[0].ts_us <= events[1].ts_us
                                     ? events[0]
                                     : events[1];
        EXPECT_GT(busy.cpu_us, 0u);
    }
}

TEST(ThreadCpuTime, WorkerThreadSpansFlushWithCpuAttribution)
{
    TraceSink sink;
    installTraceSink(&sink);
    std::thread worker([] {
        Span span("test/worker");
        busyWaitMillis(5);
    });
    worker.join();
    installTraceSink(nullptr);

    const std::vector<TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test/worker");
    // The worker's CPU time is its own: bounded by its span duration,
    // not by anything the main thread did.
    EXPECT_LE(events[0].cpu_us, events[0].dur_us + events[0].dur_us / 5 + 2000);
}

} // namespace
