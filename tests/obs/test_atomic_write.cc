/**
 * @file
 * Atomicity contract of obs::writeTextFile: content lands via a
 * uniquely named temp file plus rename, so a failed write never
 * clobbers the previous file, never leaves a stray temp behind, and
 * concurrent writers to one target cannot interleave.
 */

#include "obs/report.hh"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class AtomicWriteTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: ctest runs each case as its own
        // process, so a shared directory would race under -j.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("atomic_write_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const char *name) const
    {
        return (dir_ / name).string();
    }

    /** Directory entries left over beyond the expected final files —
     *  any hit is a staging file the writer failed to clean up. */
    std::vector<std::string>
    strayEntries(const std::vector<std::string> &expected) const
    {
        std::vector<std::string> strays;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            bool known = false;
            for (const std::string &want : expected)
                known = known || name == want;
            if (!known)
                strays.push_back(name);
        }
        return strays;
    }

    fs::path dir_;
};

} // namespace

TEST_F(AtomicWriteTest, WritesContentWithTrailingNewline)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "{\"a\":1}"));
    EXPECT_EQ(slurp(target), "{\"a\":1}\n");
    // The temp file used for staging is gone after a successful write.
    EXPECT_TRUE(strayEntries({"report.json"}).empty());
}

TEST_F(AtomicWriteTest, OverwriteReplacesPreviousContent)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "old"));
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "new"));
    EXPECT_EQ(slurp(target), "new\n");
    EXPECT_TRUE(strayEntries({"report.json"}).empty());
}

TEST_F(AtomicWriteTest, FailedStagingLeavesExistingFileIntact)
{
    // Simulated staging failure: the target name is just under the
    // filesystem's 255-byte component limit, so the target itself can
    // be created but the longer ".tmp.<pid>.<n>" staging name cannot
    // even be opened.  (Chmod-based tricks don't work under root;
    // this failure mode does.)
    const std::string target = path(std::string(250, 'x').c_str());
    {
        std::ofstream out(target, std::ios::binary);
        out << "precious\n";
    }
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "clobber"));

    // The previously committed content is untouched.
    EXPECT_EQ(slurp(target), "precious\n");
}

TEST_F(AtomicWriteTest, FailedRenameCleansUpTempFile)
{
    // Simulated failure at the rename step: the final path is an
    // existing directory, so the temp file is written but the atomic
    // rename onto it must fail.
    const std::string target = path("occupied");
    fs::create_directories(target);
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "text"));
    EXPECT_TRUE(fs::is_directory(target)); // target untouched
    EXPECT_TRUE(strayEntries({"occupied"}).empty()); // staging cleaned up
}

TEST_F(AtomicWriteTest, MissingParentDirectoryFails)
{
    const std::string target = path("no/such/dir/report.json");
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "text"));
}

TEST_F(AtomicWriteTest, ConcurrentWritersDoNotInterleave)
{
    // Each writer stages under its own temp name, so whichever rename
    // lands last publishes one writer's document whole.  With a shared
    // staging path the two would interleave inside it and the final
    // file could mix both documents.
    const std::string target = path("report.json");
    const std::string doc_a(64 * 1024, 'a');
    const std::string doc_b(64 * 1024, 'b');
    constexpr int kRounds = 50;

    std::thread writer_a([&] {
        for (int i = 0; i < kRounds; ++i)
            ASSERT_TRUE(dnastore::obs::writeTextFile(target, doc_a));
    });
    std::thread writer_b([&] {
        for (int i = 0; i < kRounds; ++i)
            ASSERT_TRUE(dnastore::obs::writeTextFile(target, doc_b));
    });
    writer_a.join();
    writer_b.join();

    const std::string final_doc = slurp(target);
    EXPECT_TRUE(final_doc == doc_a + "\n" || final_doc == doc_b + "\n")
        << "published document mixes concurrent writers";
    EXPECT_TRUE(strayEntries({"report.json"}).empty());
}
