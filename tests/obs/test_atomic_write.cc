/**
 * @file
 * Atomicity contract of obs::writeTextFile: content lands via a temp
 * file plus rename, so a failed write never clobbers the previous file
 * and never leaves a stray temp behind.
 */

#include "obs/report.hh"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class AtomicWriteTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: ctest runs each case as its own
        // process, so a shared directory would race under -j.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("atomic_write_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const char *name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

} // namespace

TEST_F(AtomicWriteTest, WritesContentWithTrailingNewline)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "{\"a\":1}"));
    EXPECT_EQ(slurp(target), "{\"a\":1}\n");
    // The temp file used for staging is gone after a successful write.
    EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicWriteTest, OverwriteReplacesPreviousContent)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "old"));
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "new"));
    EXPECT_EQ(slurp(target), "new\n");
    EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicWriteTest, FailedStagingLeavesExistingFileIntact)
{
    const std::string target = path("report.json");
    ASSERT_TRUE(dnastore::obs::writeTextFile(target, "precious"));

    // Simulated failure: the staging path is occupied by a directory,
    // so the temp file cannot even be opened.  (Chmod-based tricks
    // don't work under root; this failure mode does.)
    fs::create_directories(target + ".tmp");
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "clobber"));

    // The previously committed content is untouched.
    EXPECT_EQ(slurp(target), "precious\n");
}

TEST_F(AtomicWriteTest, FailedRenameCleansUpTempFile)
{
    // Simulated failure at the rename step: the final path is an
    // existing directory, so the temp file is written but the atomic
    // rename onto it must fail.
    const std::string target = path("occupied");
    fs::create_directories(target);
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "text"));
    EXPECT_TRUE(fs::is_directory(target)); // target untouched
    EXPECT_FALSE(fs::exists(target + ".tmp")); // staging cleaned up
}

TEST_F(AtomicWriteTest, MissingParentDirectoryFails)
{
    const std::string target = path("no/such/dir/report.json");
    EXPECT_FALSE(dnastore::obs::writeTextFile(target, "text"));
}
