/**
 * @file
 * Tests for streaming statistics and histograms.
 */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/stats.hh"

namespace dnastore
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation)
{
    Rng rng(1);
    std::vector<double> values;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-10, 10);
        values.push_back(x);
        s.add(x);
    }
    double mean = 0;
    for (double v : values)
        mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0;
    for (double v : values)
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size() - 1);

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-9);
    EXPECT_NEAR(s.sum(), mean * 1000, 1e-6);
}

TEST(RunningStats, TracksMinMax)
{
    RunningStats s;
    for (double v : {3.0, -1.0, 7.0, 2.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v = {5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {0, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, ClampsOutOfRangeP)
{
    std::vector<double> v = {1, 2, 3};
    EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 150), 3.0);
}

TEST(Histogram, CountsAndClamps)
{
    Histogram h(5);
    h.add(0);
    h.add(2);
    h.add(2);
    h.add(-3); // clamps to bin 0
    h.add(99); // clamps to bin 4
    EXPECT_EQ(h.totalCount(), 5u);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(2), 2u);
    EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, SmoothingPreservesUniform)
{
    Histogram h(10);
    for (int b = 0; b < 10; ++b)
        for (int i = 0; i < 4; ++i)
            h.add(b);
    const auto smooth = h.smoothed(2);
    for (double v : smooth)
        EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Histogram, SmoothingAveragesNeighbours)
{
    Histogram h(5);
    for (int i = 0; i < 6; ++i)
        h.add(2);
    const auto smooth = h.smoothed(1);
    EXPECT_DOUBLE_EQ(smooth[1], 2.0); // (0 + 0 + 6) / 3
    EXPECT_DOUBLE_EQ(smooth[2], 2.0); // (0 + 6 + 0) / 3
    EXPECT_DOUBLE_EQ(smooth[0], 0.0);
}

TEST(Histogram, RenderShowsBars)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    const std::string art = h.render(10);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('2'), std::string::npos);
}

} // namespace
} // namespace dnastore
