/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/args.hh"

namespace dnastore
{
namespace
{

ArgParser
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm)
{
    const auto args = parse({"--size=42", "--name=abc"});
    EXPECT_EQ(args.getInt("size", 0), 42);
    EXPECT_EQ(args.get("name"), "abc");
}

TEST(ArgParser, SpaceForm)
{
    const auto args = parse({"--size", "42"});
    EXPECT_EQ(args.getInt("size", 0), 42);
}

TEST(ArgParser, BareFlagIsTrue)
{
    const auto args = parse({"--verbose"});
    EXPECT_TRUE(args.getBool("verbose"));
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.getBool("quiet"));
}

TEST(ArgParser, Positionals)
{
    const auto args = parse({"input.bin", "--x=1", "output.bin"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.bin");
    EXPECT_EQ(args.positional()[1], "output.bin");
}

TEST(ArgParser, Defaults)
{
    const auto args = parse({});
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(ArgParser, MalformedNumberThrows)
{
    const auto args = parse({"--n=abc"});
    EXPECT_THROW(args.getInt("n", 0), std::invalid_argument);
    EXPECT_THROW(args.getDouble("n", 0), std::invalid_argument);
}

TEST(ArgParser, DoubleParsing)
{
    const auto args = parse({"--rate=0.125"});
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0), 0.125);
}

TEST(ArgParser, BoolValueForms)
{
    const auto args = parse({"--a=true", "--b=1", "--c=yes", "--d=false"});
    EXPECT_TRUE(args.getBool("a"));
    EXPECT_TRUE(args.getBool("b"));
    EXPECT_TRUE(args.getBool("c"));
    EXPECT_FALSE(args.getBool("d"));
}

} // namespace
} // namespace dnastore
