/**
 * @file
 * Tests for the annotated synchronisation wrappers (util/sync.hh):
 * Mutex/MutexLock RAII pairing, tryLock semantics, and CondVar wakeups
 * through the manual-predicate-loop idiom the toolkit uses.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/sync.hh"

namespace dnastore
{
namespace
{

TEST(Sync, MutexLockExcludesConcurrentWriters)
{
    Mutex mutex;
    long counter = 0;
    constexpr int kThreads = 4;
    constexpr long kIncrements = 10000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&mutex, &counter] {
            for (long i = 0; i < kIncrements; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (auto &writer : writers)
        writer.join();
    MutexLock lock(mutex);
    EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Sync, TryLockReportsContention)
{
    // Branch directly on tryLock() so the thread-safety analysis can
    // pair each acquisition with its release.
    Mutex mutex;
    if (!mutex.tryLock()) {
        FAIL() << "uncontended tryLock must succeed";
        return;
    }
    // Probe from another thread: relocking a held std::mutex from the
    // owning thread is undefined behaviour.
    bool probe_acquired = false;
    std::thread prober([&mutex, &probe_acquired] {
        if (mutex.tryLock()) {
            probe_acquired = true;
            mutex.unlock();
        }
    });
    prober.join();
    EXPECT_FALSE(probe_acquired);
    mutex.unlock();
}

TEST(Sync, CondVarWakesManualPredicateLoop)
{
    Mutex mutex;
    CondVar cv;
    bool ready = false;
    int observed = 0;

    std::thread waiter([&] {
        MutexLock lock(mutex);
        while (!ready)
            cv.wait(mutex);
        observed = 1;
    });

    {
        MutexLock lock(mutex);
        ready = true;
    }
    cv.notifyOne();
    waiter.join();
    EXPECT_EQ(observed, 1);
}

TEST(Sync, NotifyAllReleasesEveryWaiter)
{
    Mutex mutex;
    CondVar cv;
    bool go = false;
    int released = 0;

    constexpr int kWaiters = 3;
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
        waiters.emplace_back([&] {
            MutexLock lock(mutex);
            while (!go)
                cv.wait(mutex);
            ++released;
        });
    }

    {
        MutexLock lock(mutex);
        go = true;
    }
    cv.notifyAll();
    for (auto &waiter : waiters)
        waiter.join();
    MutexLock lock(mutex);
    EXPECT_EQ(released, kWaiters);
}

} // namespace
} // namespace dnastore
