/**
 * @file
 * Tests for the worker thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hh"

namespace dnastore
{
namespace
{

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    auto f1 = pool.submit([] { return 21 * 2; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](std::size_t i) {
                                      if (i == 57)
                                          throw std::logic_error("57");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, ParallelChunksCoversRangeOnce)
{
    ThreadPool pool(3);
    std::atomic<std::size_t> total{0};
    pool.parallelChunks(10, 250, [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        total.fetch_add(hi - lo);
    });
    EXPECT_EQ(total.load(), 240u);
}

TEST(ThreadPool, SizeReportsWorkers)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
}

} // namespace
} // namespace dnastore
