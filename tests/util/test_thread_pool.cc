/**
 * @file
 * Tests for the worker thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.hh"
#include "obs/stage_tag.hh"
#include "util/thread_pool.hh"

namespace dnastore
{
namespace
{

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    auto f1 = pool.submit([] { return 21 * 2; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](std::size_t i) {
                                      if (i == 57)
                                          throw std::logic_error("57");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, SingleChunkFailureKeepsOriginalExceptionType)
{
    // One failing chunk must rethrow the original exception unchanged,
    // not wrap it.
    ThreadPool pool(4);
    try {
        pool.parallelFor(0, 64, [](std::size_t i) {
            if (i == 3) // all failures inside one chunk
                throw std::out_of_range("only-me");
        });
        FAIL() << "expected an exception";
    } catch (const std::out_of_range &error) {
        EXPECT_STREQ(error.what(), "only-me");
    }
}

TEST(ThreadPool, AggregatesAllWorkerExceptions)
{
    // Regression: only the first worker exception used to surface; the
    // rest vanished.  With every chunk failing, the aggregate must
    // report each one.
    ThreadPool pool(2); // 64 items -> min(64, 2*4) = 8 chunks of 8
    try {
        pool.parallelChunks(0, 64, [](std::size_t lo, std::size_t) {
            throw std::runtime_error("chunk@" + std::to_string(lo));
        });
        FAIL() << "expected a ParallelError";
    } catch (const ParallelError &error) {
        EXPECT_EQ(error.totalChunks(), 8u);
        ASSERT_EQ(error.messages().size(), 8u);
        for (std::size_t c = 0; c < 8; ++c) {
            EXPECT_EQ(error.messages()[c],
                      "chunk@" + std::to_string(c * 8));
        }
        // The summary mentions the failure count and each message.
        const std::string what = error.what();
        EXPECT_NE(what.find("8 of 8"), std::string::npos);
        EXPECT_NE(what.find("chunk@56"), std::string::npos);
    }
}

TEST(ThreadPool, AggregatesMixedSuccessAndFailure)
{
    ThreadPool pool(2);
    std::atomic<std::size_t> completed{0};
    try {
        pool.parallelChunks(0, 64, [&](std::size_t lo, std::size_t hi) {
            if (lo == 8 || lo == 40)
                throw std::runtime_error("bad@" + std::to_string(lo));
            completed.fetch_add(hi - lo);
        });
        FAIL() << "expected a ParallelError";
    } catch (const ParallelError &error) {
        EXPECT_EQ(error.messages().size(), 2u);
    }
    // Every healthy chunk still ran to completion.
    EXPECT_EQ(completed.load(), 48u);
}

TEST(ThreadPool, ParallelChunksCoversRangeOnce)
{
    ThreadPool pool(3);
    std::atomic<std::size_t> total{0};
    pool.parallelChunks(10, 250, [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        total.fetch_add(hi - lo);
    });
    EXPECT_EQ(total.load(), 240u);
}

TEST(ThreadPool, SizeReportsWorkers)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, PublishesQueueWaitAndBusyAccounting)
{
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    {
        ThreadPool pool(2);
        pool.parallelFor(0, 64, [](std::size_t) {});
        // One task with measurable wall time so busy_micros must move.
        pool.submit([] {
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }).get();
    } // destructor joins: busy/idle totals are final
    const obs::MetricsSnapshot delta =
        obs::metrics().snapshot().delta(before);

    const auto tasks =
        delta.counters.find("util.thread_pool.tasks_total");
    ASSERT_NE(tasks, delta.counters.end());
    EXPECT_GT(tasks->second, 0u);

    // Every dequeued task recorded exactly one enqueue->dequeue wait.
    const auto wait =
        delta.histograms.find("util.thread_pool.queue_wait_seconds");
    ASSERT_NE(wait, delta.histograms.end());
    EXPECT_EQ(wait->second.total_count, tasks->second);
    EXPECT_GE(wait->second.sum, 0.0);

    const auto cpu =
        delta.histograms.find("util.thread_pool.task_cpu_seconds");
    ASSERT_NE(cpu, delta.histograms.end());
    EXPECT_EQ(cpu->second.total_count, tasks->second);

    // The sleeping task makes >= ~10ms of busy wall time; idle is
    // whatever the other worker accumulated waiting for work.
    const auto busy =
        delta.counters.find("util.thread_pool.busy_micros_total");
    ASSERT_NE(busy, delta.counters.end());
    EXPECT_GE(busy->second, 5000u);

    const auto utilization =
        delta.gauges.find("util.thread_pool.utilization");
    ASSERT_NE(utilization, delta.gauges.end());
    EXPECT_GE(utilization->second.value, 0.0);
    EXPECT_LE(utilization->second.value, 1.0);
}

TEST(ThreadPool, PropagatesSubmitterStageTagIntoWorkers)
{
    ThreadPool pool(2);
    std::string observed;
    {
        obs::StageTagScope tag("test.pool_stage");
        observed = pool.submit([] {
                           return std::string(obs::currentStageTag());
                       })
                       .get();
    }
    EXPECT_EQ(observed, "test.pool_stage");
    // Outside any scope, submitted work runs untagged.
    EXPECT_EQ(pool.submit([] {
                      return std::string(obs::currentStageTag());
                  })
                  .get(),
              "");
}

#if defined(DNASTORE_ENABLE_DCHECKS)
TEST(ThreadPoolDeathTest, SubmitDuringShutdownTripsAssertNotDeadlock)
{
    // A worker task that keeps submitting while the pool is being
    // destroyed must hit the DNASTORE_ASSERT in submit() (a loud,
    // actionable abort), not hang the destructor's join forever.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            std::promise<void> running;
            auto started = running.get_future();
            ThreadPool pool(2);
            auto chatter = pool.submit([&pool, &running] {
                running.set_value();
                for (;;) {
                    pool.submit([] {});
                    std::this_thread::yield();
                }
            });
            started.wait();
            // Scope exit destroys the pool: stopping flips under the
            // mutex, and the chatter task's next submit asserts.
        },
        "stopping ThreadPool");
}
#endif

} // namespace
} // namespace dnastore
