/**
 * @file
 * Tests for the aligned-text/CSV table renderer.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace dnastore
{
namespace
{

TEST(Table, TextAlignsColumns)
{
    Table t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string text = t.text();
    // Every row has the same length up to the last column's content.
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t;
    t.header({"a", "b"});
    t.row({"x,y", "say \"hi\""});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FmtDouble)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(1.0, 4), "1.0000");
}

TEST(Table, FmtIntegers)
{
    EXPECT_EQ(Table::fmt(42), "42");
    EXPECT_EQ(Table::fmt(std::size_t{7}), "7");
    EXPECT_EQ(Table::fmt(-3), "-3");
}

TEST(Table, HandlesRaggedRows)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3"});
    EXPECT_NO_THROW(t.text());
    EXPECT_NO_THROW(t.csv());
}

TEST(Table, WriteCsvFailsOnBadPath)
{
    Table t;
    t.header({"a"});
    EXPECT_FALSE(t.writeCsv("/nonexistent-dir-xyz/out.csv"));
}

} // namespace
} // namespace dnastore
