/**
 * @file
 * Tests for CRC-32 against known vectors.
 */

#include <gtest/gtest.h>

#include <span>
#include <string>

#include "util/crc32.hh"

namespace dnastore
{
namespace
{

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors)
{
    // Standard check value for the IEEE CRC-32.
    EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(bytes("")), 0x00000000u);
    EXPECT_EQ(crc32(bytes("a")), 0xE8B7BE43u);
    EXPECT_EQ(crc32(bytes("abc")), 0x352441C2u);
}

TEST(Crc32, SensitiveToSingleBit)
{
    auto data = bytes("hello world");
    const auto original = crc32(data);
    data[3] ^= 0x01;
    EXPECT_NE(crc32(data), original);
}

TEST(Crc32, PointerAndVectorAgree)
{
    const auto data = bytes("agreement");
    EXPECT_EQ(crc32(data), crc32(std::span(data.data(), data.size())));
}

} // namespace
} // namespace dnastore
