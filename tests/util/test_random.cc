/**
 * @file
 * Tests for the deterministic PRNG and its distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(SplitMix64, IsDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(1);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(4);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(7);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(8);
    for (double lambda : {0.5, 3.0, 10.0, 50.0}) {
        double sum = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(lambda));
        EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(9);
    const double p = 0.25;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricCertainSuccessIsZero)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.5), 0.0);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexZeroTotalThrows)
{
    Rng rng(14);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_THROW(rng.weightedIndex(weights), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctAndInRange)
{
    Rng rng(15);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.below(100);
        const std::size_t k = rng.below(n + 1);
        const auto sample = rng.sampleIndices(n, k);
        EXPECT_EQ(sample.size(), k);
        std::set<std::size_t> distinct(sample.begin(), sample.end());
        EXPECT_EQ(distinct.size(), k);
        for (std::size_t idx : sample)
            EXPECT_LT(idx, n);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(16);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[static_cast<std::size_t>(i)] = i;
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v); // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(17);
    Rng child = a.split();
    // The child stream should differ from the parent's continuation.
    bool any_diff = false;
    for (int i = 0; i < 8; ++i)
        any_diff |= a.next() != child.next();
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace dnastore
