/**
 * @file
 * Tests for the learned position/context Markov channel.
 */

#include <gtest/gtest.h>

#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"
#include "simulator/markov_channel.hh"
#include "simulator/virtual_wetlab.hh"

namespace dnastore
{
namespace
{

std::pair<std::vector<Strand>, std::vector<Strand>>
makePairs(const Channel &channel, Rng &rng, std::size_t count,
          std::size_t length)
{
    std::vector<Strand> clean, noisy;
    for (std::size_t i = 0; i < count; ++i) {
        clean.push_back(strand::random(rng, length));
        noisy.push_back(channel.transmit(clean.back(), rng));
    }
    return {clean, noisy};
}

TEST(MarkovChannel, FitRejectsBadInput)
{
    EXPECT_THROW(MarkovChannel::fit({}, {}), std::invalid_argument);
    EXPECT_THROW(MarkovChannel::fit({"ACGT"}, {}), std::invalid_argument);
}

TEST(MarkovChannel, FitRecoversIidErrorRate)
{
    Rng rng(1);
    IidChannel reference(IidChannelConfig::fromTotalErrorRate(0.06));
    const auto [clean, noisy] = makePairs(reference, rng, 400, 120);
    const auto model = MarkovChannel::fit(clean, noisy);
    MarkovChannel learned(model);

    const auto [probe, _] = makePairs(reference, rng, 1, 120);
    std::vector<Strand> probe_clean, probe_noisy;
    for (int i = 0; i < 400; ++i) {
        probe_clean.push_back(strand::random(rng, 120));
        probe_noisy.push_back(learned.transmit(probe_clean.back(), rng));
    }
    const auto measured = measureChannelErrors(probe_clean, probe_noisy);
    EXPECT_NEAR(measured.mean_error_rate, 0.06, 0.02);
}

TEST(MarkovChannel, LearnsPositionalRamp)
{
    Rng rng(2);
    VirtualWetlabChannel reference;
    const auto [clean, noisy] = makePairs(reference, rng, 800, 120);
    const auto model = MarkovChannel::fit(clean, noisy);
    MarkovChannel learned(model);

    std::vector<Strand> probe_clean, probe_noisy;
    for (int i = 0; i < 800; ++i) {
        probe_clean.push_back(strand::random(rng, 120));
        probe_noisy.push_back(learned.transmit(probe_clean.back(), rng));
    }
    const auto measured = measureChannelErrors(probe_clean, probe_noisy);
    double head = 0, tail = 0;
    for (std::size_t i = 0; i < 30; ++i) {
        head += measured.substitution_rate[i] + measured.deletion_rate[i];
        tail += measured.substitution_rate[90 + i] +
            measured.deletion_rate[90 + i];
    }
    EXPECT_GT(tail, head * 1.2) << "learned channel lost the 3' ramp";
}

TEST(MarkovChannel, LearnsBurstContinuation)
{
    Rng rng(3);
    VirtualWetlabConfig cfg;
    cfg.burst_continuation = 0.4;
    VirtualWetlabChannel reference(cfg);
    const auto [clean, noisy] = makePairs(reference, rng, 600, 120);
    const auto model = MarkovChannel::fit(clean, noisy);
    EXPECT_GT(model.burst_continuation, 0.15);
    EXPECT_LT(model.burst_continuation, 0.7);
}

TEST(MarkovChannel, ZeroErrorChannelLearnsIdentity)
{
    Rng rng(4);
    PerfectChannel reference;
    const auto [clean, noisy] = makePairs(reference, rng, 50, 80);
    const auto model = MarkovChannel::fit(clean, noisy);
    MarkovChannel learned(model);
    const Strand s = strand::random(rng, 80);
    EXPECT_EQ(learned.transmit(s, rng), s);
}

TEST(MarkovChannel, BucketOfMapsRange)
{
    EXPECT_EQ(MarkovChannelModel::bucketOf(0, 120), 0u);
    EXPECT_EQ(MarkovChannelModel::bucketOf(119, 120),
              MarkovChannelModel::kBuckets - 1);
    EXPECT_EQ(MarkovChannelModel::bucketOf(0, 0), 0u);
}

} // namespace
} // namespace dnastore
