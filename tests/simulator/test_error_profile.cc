/**
 * @file
 * Tests for the error-profile measurement used by the simulator
 * fidelity experiments (paper metrics (i)-(iv)).
 */

#include <gtest/gtest.h>

#include "simulator/error_profile.hh"
#include "util/random.hh"

namespace dnastore
{
namespace
{

TEST(ChannelErrors, PerfectPairsHaveZeroRates)
{
    Rng rng(1);
    std::vector<Strand> clean;
    for (int i = 0; i < 10; ++i)
        clean.push_back(strand::random(rng, 50));
    const auto profile = measureChannelErrors(clean, clean);
    EXPECT_DOUBLE_EQ(profile.mean_error_rate, 0.0);
    for (double r : profile.substitution_rate)
        EXPECT_DOUBLE_EQ(r, 0.0);
    EXPECT_DOUBLE_EQ(profile.mean_read_length, 50.0);
}

TEST(ChannelErrors, CountsLocalizedSubstitutions)
{
    // Corrupt index 10 of every read.
    Rng rng(2);
    std::vector<Strand> clean, reads;
    for (int i = 0; i < 50; ++i) {
        const Strand s = strand::random(rng, 40);
        Strand r = s;
        r[10] = r[10] == 'A' ? 'C' : 'A';
        clean.push_back(s);
        reads.push_back(r);
    }
    const auto profile = measureChannelErrors(clean, reads);
    EXPECT_NEAR(profile.substitution_rate[10], 1.0, 1e-9);
    EXPECT_NEAR(profile.substitution_rate[11], 0.0, 0.05);
}

TEST(ChannelErrors, SizeMismatchThrows)
{
    EXPECT_THROW(measureChannelErrors({"ACGT"}, {}),
                 std::invalid_argument);
}

TEST(Reconstruction, PerfectReconstructionScoresPerfectly)
{
    Rng rng(3);
    std::vector<Strand> originals;
    for (int i = 0; i < 20; ++i)
        originals.push_back(strand::random(rng, 30));
    const auto profile = measureReconstruction(originals, originals);
    EXPECT_EQ(profile.perfect_strands, 20u);
    EXPECT_DOUBLE_EQ(profile.mean_error_rate, 0.0);
}

TEST(Reconstruction, CountsPerIndexErrors)
{
    std::vector<Strand> originals = {"AAAA", "CCCC"};
    std::vector<Strand> reconstructed = {"AATA", "CCCC"};
    const auto profile = measureReconstruction(originals, reconstructed);
    EXPECT_EQ(profile.perfect_strands, 1u);
    EXPECT_DOUBLE_EQ(profile.error_rate[2], 0.5);
    EXPECT_DOUBLE_EQ(profile.error_rate[0], 0.0);
    EXPECT_DOUBLE_EQ(profile.mean_error_rate, 1.0 / 8.0);
}

TEST(Reconstruction, ShortReconstructionCountsMissingAsErrors)
{
    std::vector<Strand> originals = {"ACGTACGT"};
    std::vector<Strand> reconstructed = {"ACGT"};
    const auto profile = measureReconstruction(originals, reconstructed);
    EXPECT_EQ(profile.perfect_strands, 0u);
    EXPECT_DOUBLE_EQ(profile.error_rate[6], 1.0);
    EXPECT_DOUBLE_EQ(profile.mean_error_rate, 0.5);
}

TEST(Reconstruction, LongerReconstructionIsImperfect)
{
    std::vector<Strand> originals = {"ACGT"};
    std::vector<Strand> reconstructed = {"ACGTA"};
    const auto profile = measureReconstruction(originals, reconstructed);
    EXPECT_EQ(profile.perfect_strands, 0u);
    // The overlapping prefix is correct though.
    EXPECT_DOUBLE_EQ(profile.mean_error_rate, 0.0);
}

TEST(ProfileDeviation, ZeroForIdenticalProfiles)
{
    ReconstructionProfile a;
    a.error_rate = {0.1, 0.2, 0.3};
    EXPECT_DOUBLE_EQ(profileDeviation(a, a), 0.0);
}

TEST(ProfileDeviation, MeanAbsoluteDifference)
{
    ReconstructionProfile a, b;
    a.error_rate = {0.1, 0.2};
    b.error_rate = {0.2, 0.4};
    EXPECT_NEAR(profileDeviation(a, b), 0.15, 1e-12);
}

TEST(ProfileDeviation, UsesCommonPrefix)
{
    ReconstructionProfile a, b;
    a.error_rate = {0.1};
    b.error_rate = {0.1, 0.9};
    EXPECT_DOUBLE_EQ(profileDeviation(a, b), 0.0);
}

} // namespace
} // namespace dnastore
