/**
 * @file
 * Tests for the i.i.d., SOLQC and virtual-wetlab channels.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dna/align.hh"
#include "dna/distance.hh"
#include "reconstruction/bma.hh"
#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"
#include "simulator/solqc_channel.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/stats.hh"

namespace dnastore
{
namespace
{

TEST(PerfectChannel, IsIdentity)
{
    PerfectChannel channel;
    Rng rng(1);
    const Strand s = strand::random(rng, 100);
    EXPECT_EQ(channel.transmit(s, rng), s);
}

TEST(IidChannel, ZeroRatesAreIdentity)
{
    IidChannel channel({0.0, 0.0, 0.0});
    Rng rng(2);
    for (int i = 0; i < 20; ++i) {
        const Strand s = strand::random(rng, 80);
        EXPECT_EQ(channel.transmit(s, rng), s);
    }
}

TEST(IidChannel, RejectsInvalidProbabilities)
{
    EXPECT_THROW(IidChannel({-0.1, 0, 0}), std::invalid_argument);
    EXPECT_THROW(IidChannel({0.5, 0.4, 0.2}), std::invalid_argument);
}

TEST(IidChannel, DeletionOnlyShortens)
{
    IidChannel channel({0.0, 0.2, 0.0});
    Rng rng(3);
    const Strand s = strand::random(rng, 2000);
    const Strand read = channel.transmit(s, rng);
    EXPECT_LT(read.size(), s.size());
    EXPECT_NEAR(static_cast<double>(read.size()),
                static_cast<double>(s.size()) * 0.8,
                static_cast<double>(s.size()) * 0.05);
}

TEST(IidChannel, InsertionOnlyLengthens)
{
    IidChannel channel({0.2, 0.0, 0.0});
    Rng rng(4);
    const Strand s = strand::random(rng, 2000);
    const Strand read = channel.transmit(s, rng);
    EXPECT_GT(read.size(), s.size());
}

TEST(IidChannel, SubstitutionOnlyPreservesLength)
{
    IidChannel channel({0.0, 0.0, 0.1});
    Rng rng(5);
    const Strand s = strand::random(rng, 3000);
    const Strand read = channel.transmit(s, rng);
    ASSERT_EQ(read.size(), s.size());
    const std::size_t diff = hammingDistance(s, read);
    EXPECT_NEAR(static_cast<double>(diff), 300.0, 60.0);
    // Substitutions never keep the original base.
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != read[i]) {
            EXPECT_TRUE(strand::isValid(Strand(1, read[i])));
        }
    }
}

TEST(IidChannel, TotalRateSplitsEvenly)
{
    const auto cfg = IidChannelConfig::fromTotalErrorRate(0.09);
    EXPECT_DOUBLE_EQ(cfg.p_insertion, 0.03);
    EXPECT_DOUBLE_EQ(cfg.p_deletion, 0.03);
    EXPECT_DOUBLE_EQ(cfg.p_substitution, 0.03);
    EXPECT_NEAR(cfg.total(), 0.09, 1e-12);
}

TEST(IidChannel, MeasuredRateMatchesConfigured)
{
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    Rng rng(6);
    std::vector<Strand> clean, reads;
    for (int i = 0; i < 100; ++i) {
        clean.push_back(strand::random(rng, 150));
        reads.push_back(channel.transmit(clean.back(), rng));
    }
    const auto profile = measureChannelErrors(clean, reads);
    EXPECT_NEAR(profile.mean_error_rate, 0.06, 0.015);
}

TEST(SolqcChannel, PreservesLengthStatistically)
{
    SolqcChannel channel;
    Rng rng(7);
    double in_len = 0, out_len = 0;
    for (int i = 0; i < 200; ++i) {
        const Strand s = strand::random(rng, 120);
        const Strand read = channel.transmit(s, rng);
        in_len += static_cast<double>(s.size());
        out_len += static_cast<double>(read.size());
    }
    // Insertion and deletion rates are similar, so the mean length
    // should stay within a few percent.
    EXPECT_NEAR(out_len / in_len, 1.0, 0.05);
}

TEST(SolqcChannel, TotalRateScalingWorks)
{
    const auto cfg = SolqcChannelConfig::fromTotalErrorRate(0.12);
    SolqcChannel channel(cfg);
    Rng rng(8);
    std::vector<Strand> clean, reads;
    for (int i = 0; i < 150; ++i) {
        clean.push_back(strand::random(rng, 150));
        reads.push_back(channel.transmit(clean.back(), rng));
    }
    const auto profile = measureChannelErrors(clean, reads);
    EXPECT_NEAR(profile.mean_error_rate, 0.12, 0.03);
}

TEST(SolqcChannel, PreInsertionAsymmetryMakesForwardHarder)
{
    // Paper Section V-A: SOLQC models pre-insertions but not
    // post-insertions, which makes forward reconstruction harder than
    // reverse.  Deterministic under the fixed seed.
    Rng rng(3);
    SolqcChannel channel(SolqcChannelConfig::fromTotalErrorRate(0.09));
    BmaReconstructor bma;
    std::size_t forward_perfect = 0, reverse_perfect = 0;
    for (int i = 0; i < 300; ++i) {
        const Strand s = strand::random(rng, 110);
        std::vector<Strand> reads, reversed;
        for (int c = 0; c < 8; ++c) {
            const Strand r = channel.transmit(s, rng);
            reads.push_back(r);
            reversed.emplace_back(r.rbegin(), r.rend());
        }
        forward_perfect += bma.reconstruct(reads, s.size()) == s;
        Strand rev = bma.reconstruct(reversed, s.size());
        std::reverse(rev.begin(), rev.end());
        reverse_perfect += rev == s;
    }
    EXPECT_GT(reverse_perfect, forward_perfect);
}

TEST(SolqcChannel, RejectsNegativeRates)
{
    SolqcChannelConfig cfg;
    cfg.p_deletion[2] = -0.1;
    EXPECT_THROW(SolqcChannel{cfg}, std::invalid_argument);
}

TEST(VirtualWetlab, ErrorRateRampsTowardEnd)
{
    VirtualWetlabChannel channel;
    Rng rng(9);
    std::vector<Strand> clean, reads;
    for (int i = 0; i < 600; ++i) {
        clean.push_back(strand::random(rng, 120));
        reads.push_back(channel.transmit(clean.back(), rng));
    }
    const auto profile = measureChannelErrors(clean, reads);
    // Compare mean error rate of the first vs last quarter of indexes.
    double head = 0, tail = 0;
    for (std::size_t i = 0; i < 30; ++i) {
        head += profile.substitution_rate[i] + profile.deletion_rate[i];
        tail += profile.substitution_rate[90 + i] +
            profile.deletion_rate[90 + i];
    }
    EXPECT_GT(tail, head * 1.3);
}

TEST(VirtualWetlab, ReadQualityVariesAcrossReads)
{
    VirtualWetlabChannel channel;
    Rng rng(10);
    const Strand s = strand::random(rng, 150);
    RunningStats per_read_rate;
    for (int i = 0; i < 300; ++i) {
        const Strand read = channel.transmit(s, rng);
        per_read_rate.add(
            static_cast<double>(levenshtein(s, read)) /
            static_cast<double>(s.size()));
    }
    // The tiered quality model must produce a wide spread relative to a
    // binomial channel (stddev well above mean/5).
    EXPECT_GT(per_read_rate.stddev(), per_read_rate.mean() / 5.0);
}

TEST(VirtualWetlab, DeletionBurstsExist)
{
    VirtualWetlabConfig cfg;
    cfg.base_error_rate = 0.08;
    VirtualWetlabChannel channel(cfg);
    Rng rng(11);
    std::size_t multi_deletion_events = 0;
    for (int i = 0; i < 300; ++i) {
        const Strand s = strand::random(rng, 150);
        const Strand read = channel.transmit(s, rng);
        const auto ops = classifyEdits(s, read);
        std::size_t run = 0;
        for (const auto &op : ops) {
            if (op.kind == EditKind::Deletion) {
                ++run;
                if (run >= 2) {
                    ++multi_deletion_events;
                    break;
                }
            } else {
                run = 0;
            }
        }
    }
    EXPECT_GT(multi_deletion_events, 30u);
}

TEST(VirtualWetlab, RejectsBadConfig)
{
    VirtualWetlabConfig cfg;
    cfg.base_error_rate = 0.9;
    EXPECT_THROW(VirtualWetlabChannel{cfg}, std::invalid_argument);
    VirtualWetlabConfig weights;
    weights.w_deletion = weights.w_insertion = weights.w_substitution = 0;
    EXPECT_THROW(VirtualWetlabChannel{weights}, std::invalid_argument);
}

TEST(Channels, NamesAreStable)
{
    EXPECT_EQ(IidChannel().name(), "iid-rashtchian");
    EXPECT_EQ(SolqcChannel().name(), "solqc");
    EXPECT_EQ(VirtualWetlabChannel().name(), "virtual-wetlab");
    EXPECT_EQ(PerfectChannel().name(), "perfect");
}

} // namespace
} // namespace dnastore
