/**
 * @file
 * Tests for the simulated sequencing-run driver.
 */

#include <gtest/gtest.h>

#include <map>

#include "simulator/sequencing_run.hh"

namespace dnastore
{
namespace
{

std::vector<Strand>
makeStrands(Rng &rng, std::size_t count, std::size_t length)
{
    std::vector<Strand> strands;
    for (std::size_t i = 0; i < count; ++i)
        strands.push_back(strand::random(rng, length));
    return strands;
}

TEST(SequencingRun, FixedCoverageProducesExactReadCounts)
{
    Rng rng(1);
    const auto strands = makeStrands(rng, 50, 60);
    PerfectChannel channel;
    CoverageModel coverage(5.0);
    const auto run = simulateSequencing(strands, channel, coverage, rng);
    EXPECT_EQ(run.reads.size(), 250u);
    EXPECT_EQ(run.origin.size(), 250u);
    EXPECT_EQ(run.dropped_strands, 0u);

    std::map<std::uint32_t, int> counts;
    for (std::uint32_t o : run.origin)
        ++counts[o];
    EXPECT_EQ(counts.size(), 50u);
    for (const auto &[origin, count] : counts)
        EXPECT_EQ(count, 5);
}

TEST(SequencingRun, OriginMatchesContentWithPerfectChannel)
{
    Rng rng(2);
    const auto strands = makeStrands(rng, 30, 40);
    PerfectChannel channel;
    CoverageModel coverage(3.0);
    const auto run = simulateSequencing(strands, channel, coverage, rng);
    for (std::size_t i = 0; i < run.reads.size(); ++i)
        EXPECT_EQ(run.reads[i], strands[run.origin[i]]);
}

TEST(SequencingRun, ShuffleKeepsPairsTogether)
{
    Rng rng(3);
    const auto strands = makeStrands(rng, 20, 30);
    PerfectChannel channel;
    CoverageModel coverage(4.0);
    const auto shuffled =
        simulateSequencing(strands, channel, coverage, rng, true);
    // Even shuffled, each read must still equal its origin strand.
    for (std::size_t i = 0; i < shuffled.reads.size(); ++i)
        EXPECT_EQ(shuffled.reads[i], strands[shuffled.origin[i]]);
}

TEST(SequencingRun, NoShufflePreservesOrder)
{
    Rng rng(4);
    const auto strands = makeStrands(rng, 10, 30);
    PerfectChannel channel;
    CoverageModel coverage(2.0);
    const auto run =
        simulateSequencing(strands, channel, coverage, rng, false);
    for (std::size_t i = 0; i < run.origin.size(); ++i)
        EXPECT_EQ(run.origin[i], i / 2);
}

TEST(SequencingRun, DropoutCountsDroppedStrands)
{
    Rng rng(5);
    const auto strands = makeStrands(rng, 2000, 20);
    PerfectChannel channel;
    CoverageModel coverage(3.0, CoverageDistribution::Fixed, 0.3);
    const auto run = simulateSequencing(strands, channel, coverage, rng);
    EXPECT_NEAR(static_cast<double>(run.dropped_strands), 600.0, 80.0);
    EXPECT_EQ(run.reads.size(), (2000 - run.dropped_strands) * 3);
}

TEST(SequencingRun, EmptyInputYieldsEmptyRun)
{
    Rng rng(6);
    PerfectChannel channel;
    CoverageModel coverage(5.0);
    const auto run = simulateSequencing({}, channel, coverage, rng);
    EXPECT_TRUE(run.reads.empty());
    EXPECT_TRUE(run.origin.empty());
}

} // namespace
} // namespace dnastore
