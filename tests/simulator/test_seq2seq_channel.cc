/**
 * @file
 * Tests for the seq2seq channel wrapper (training driver, sampling and
 * temperature control).
 */

#include <gtest/gtest.h>

#include "dna/distance.hh"
#include "simulator/iid_channel.hh"
#include "simulator/seq2seq_channel.hh"

namespace dnastore
{
namespace
{

Seq2SeqChannelConfig
tinyConfig()
{
    Seq2SeqChannelConfig cfg;
    cfg.model.hidden = 10;
    cfg.model.attention = 10;
    cfg.model.seed = 21;
    cfg.epochs = 3;
    cfg.batch_size = 8;
    return cfg;
}

TEST(Seq2SeqChannel, TransmitProducesValidStrands)
{
    Seq2SeqChannel channel(tinyConfig());
    Rng rng(1);
    const Strand clean = strand::random(rng, 30);
    for (int i = 0; i < 5; ++i) {
        const Strand read = channel.transmit(clean, rng);
        EXPECT_TRUE(strand::isValid(read));
        EXPECT_LE(read.size(),
                  clean.size() *
                          channel.model().config().max_output_percent /
                          100 +
                      4);
    }
    EXPECT_EQ(channel.name(), "rnn-seq2seq");
}

TEST(Seq2SeqChannel, TrainingImprovesHeldOutLikelihood)
{
    Seq2SeqChannelConfig cfg = tinyConfig();
    cfg.epochs = 12;
    Seq2SeqChannel channel(cfg);
    Rng rng(2);
    IidChannel teacher(IidChannelConfig::fromTotalErrorRate(0.03));
    std::vector<nn::StrandPair> train, held_out;
    for (int i = 0; i < 60; ++i) {
        const Strand c = strand::random(rng, 14);
        train.push_back({c, teacher.transmit(c, rng)});
    }
    for (int i = 0; i < 15; ++i) {
        const Strand c = strand::random(rng, 14);
        held_out.push_back({c, teacher.transmit(c, rng)});
    }
    const double before = channel.evaluate(held_out);
    channel.train(train, rng);
    const double after = channel.evaluate(held_out);
    EXPECT_LT(after, before);
}

TEST(Seq2SeqChannel, LowerTemperatureSharpensOutput)
{
    // After some training the model has real preferences; near-zero
    // temperature then approaches argmax decoding, so samples of the
    // same strand land closer to each other than at temperature 1.
    // (An untrained model's logits are near-tied, so training first is
    // what makes the temperature knob observable.)
    Seq2SeqChannelConfig cfg = tinyConfig();
    cfg.epochs = 10;
    Seq2SeqChannel channel(cfg);
    Rng rng(3);
    std::vector<nn::StrandPair> pairs;
    for (int i = 0; i < 50; ++i) {
        const Strand c = strand::random(rng, 12);
        pairs.push_back({c, c});
    }
    channel.train(pairs, rng);

    const Strand clean = strand::random(rng, 12);
    auto spread_at = [&](double temperature) {
        channel.setSampleTemperature(temperature);
        std::vector<Strand> samples;
        for (int i = 0; i < 10; ++i)
            samples.push_back(channel.transmit(clean, rng));
        double total = 0;
        int pairs_counted = 0;
        for (std::size_t i = 0; i < samples.size(); ++i)
            for (std::size_t j = i + 1; j < samples.size(); ++j) {
                total += static_cast<double>(
                    levenshtein(samples[i], samples[j]));
                ++pairs_counted;
            }
        return total / pairs_counted;
    };
    const double hot = spread_at(1.0);
    const double cold = spread_at(0.05);
    EXPECT_LT(cold, hot);
}

} // namespace
} // namespace dnastore
