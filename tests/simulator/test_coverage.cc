/**
 * @file
 * Tests for the reads-per-strand coverage models.
 */

#include <gtest/gtest.h>

#include "simulator/coverage.hh"

namespace dnastore
{
namespace
{

TEST(CoverageModel, FixedIsExact)
{
    CoverageModel model(10.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(model.draw(rng), 10u);
}

TEST(CoverageModel, PoissonMeanMatches)
{
    CoverageModel model(8.0, CoverageDistribution::Poisson);
    Rng rng(2);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(model.draw(rng));
    EXPECT_NEAR(total / n, 8.0, 0.2);
}

TEST(CoverageModel, LogNormalMeanMatchesAndIsSkewed)
{
    CoverageModel model(10.0, CoverageDistribution::LogNormalSkew);
    Rng rng(3);
    double total = 0;
    std::uint64_t peak = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto draw = model.draw(rng);
        total += static_cast<double>(draw);
        peak = std::max(peak, draw);
    }
    EXPECT_NEAR(total / n, 10.0, 0.6);
    EXPECT_GT(peak, 30u); // heavy upper tail
}

TEST(CoverageModel, DropoutProducesZeros)
{
    CoverageModel model(5.0, CoverageDistribution::Fixed, 0.25);
    Rng rng(4);
    int zeros = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        zeros += model.draw(rng) == 0;
    EXPECT_NEAR(static_cast<double>(zeros) / n, 0.25, 0.02);
}

TEST(CoverageModel, Validation)
{
    EXPECT_THROW(CoverageModel(0.0), std::invalid_argument);
    EXPECT_THROW(CoverageModel(-1.0), std::invalid_argument);
    EXPECT_THROW(CoverageModel(5.0, CoverageDistribution::Fixed, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(CoverageModel(5.0, CoverageDistribution::Fixed, -0.1),
                 std::invalid_argument);
}

TEST(CoverageModel, ShapeNames)
{
    EXPECT_EQ(CoverageModel(1.0).shapeName(), "fixed");
    EXPECT_EQ(CoverageModel(1.0, CoverageDistribution::Poisson).shapeName(),
              "poisson");
    EXPECT_EQ(
        CoverageModel(1.0, CoverageDistribution::LogNormalSkew).shapeName(),
        "lognormal");
}

} // namespace
} // namespace dnastore
