/**
 * @file
 * Tests for the online greedy clustering module.
 */

#include <gtest/gtest.h>

#include "clustering/accuracy.hh"
#include "clustering/greedy_clusterer.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"

namespace dnastore
{
namespace
{

SequencingRun
makeWorkload(Rng &rng, std::size_t num_strands, double error_rate,
             double coverage)
{
    std::vector<Strand> strands;
    for (std::size_t i = 0; i < num_strands; ++i)
        strands.push_back(strand::random(rng, 130));
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));
    CoverageModel cov(coverage, CoverageDistribution::Poisson);
    return simulateSequencing(strands, channel, cov, rng);
}

TEST(GreedyClusterer, EmptyAndSingleton)
{
    GreedyOnlineClusterer clusterer({});
    EXPECT_EQ(clusterer.cluster({}).numClusters(), 0u);
    const auto single = clusterer.cluster({"ACGTACGTACGT"});
    ASSERT_EQ(single.numClusters(), 1u);
}

TEST(GreedyClusterer, PerfectReadsClusterWell)
{
    Rng rng(1);
    std::vector<Strand> strands;
    for (int i = 0; i < 100; ++i)
        strands.push_back(strand::random(rng, 130));
    PerfectChannel channel;
    CoverageModel coverage(5.0);
    const auto run = simulateSequencing(strands, channel, coverage, rng);
    GreedyOnlineClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.9), 0.9);
}

TEST(GreedyClusterer, ReasonableAccuracyAtModerateError)
{
    Rng rng(2);
    const auto run = makeWorkload(rng, 300, 0.06, 10.0);
    GreedyOnlineClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    // The single-pass scheme trades accuracy for memory/passes; it must
    // still be clearly useful.
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.5), 0.6);
}

TEST(GreedyClusterer, ClustersPartitionReads)
{
    Rng rng(3);
    const auto run = makeWorkload(rng, 100, 0.06, 6.0);
    GreedyOnlineClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    std::vector<bool> seen(run.reads.size(), false);
    std::size_t total = 0;
    for (const auto &cluster : clustering.clusters) {
        for (std::uint32_t idx : cluster) {
            ASSERT_LT(idx, run.reads.size());
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
            ++total;
        }
    }
    EXPECT_EQ(total, run.reads.size());
}

TEST(GreedyClusterer, StatsPopulated)
{
    Rng rng(4);
    const auto run = makeWorkload(rng, 100, 0.06, 6.0);
    GreedyOnlineClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    const auto &stats = clusterer.stats();
    EXPECT_EQ(stats.clusters_created, clustering.numClusters());
    EXPECT_GT(stats.signature_comparisons, 0u);
    EXPECT_GE(stats.seconds, 0.0);
}

TEST(GreedyClusterer, WorksWithWGramSignatures)
{
    Rng rng(5);
    const auto run = makeWorkload(rng, 150, 0.06, 8.0);
    GreedyClustererConfig cfg;
    cfg.signature = SignatureKind::WGram;
    GreedyOnlineClusterer clusterer(cfg);
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.5), 0.5);
    EXPECT_EQ(clusterer.name(), "greedy-online/w-gram");
}

TEST(GreedyClusterer, SwapsIntoPipelineInterface)
{
    // The point of the module system: a Clusterer* is a Clusterer*.
    GreedyClustererConfig cfg;
    GreedyOnlineClusterer greedy(cfg);
    Clusterer *module = &greedy;
    Rng rng(6);
    const auto run = makeWorkload(rng, 50, 0.03, 5.0);
    const auto clustering = module->cluster(run.reads);
    EXPECT_GT(clustering.numClusters(), 0u);
}

} // namespace
} // namespace dnastore
