/**
 * @file
 * Tests for the disjoint-set forest.
 */

#include <gtest/gtest.h>

#include "clustering/union_find.hh"

namespace dnastore
{
namespace
{

TEST(UnionFind, StartsAsSingletons)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.numSets(), 5u);
    EXPECT_EQ(uf.count(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(uf.find(i), i);
        EXPECT_EQ(uf.sizeOf(i), 1u);
    }
}

TEST(UnionFind, MergeConnects)
{
    UnionFind uf(6);
    uf.merge(0, 1);
    uf.merge(2, 3);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_TRUE(uf.connected(2, 3));
    EXPECT_FALSE(uf.connected(0, 2));
    EXPECT_EQ(uf.numSets(), 4u);
    uf.merge(1, 3);
    EXPECT_TRUE(uf.connected(0, 2));
    EXPECT_EQ(uf.numSets(), 3u);
    EXPECT_EQ(uf.sizeOf(0), 4u);
}

TEST(UnionFind, MergeIsIdempotent)
{
    UnionFind uf(3);
    uf.merge(0, 1);
    const std::size_t sets = uf.numSets();
    uf.merge(0, 1);
    uf.merge(1, 0);
    EXPECT_EQ(uf.numSets(), sets);
}

TEST(UnionFind, GroupsPartitionElements)
{
    UnionFind uf(10);
    uf.merge(0, 5);
    uf.merge(5, 9);
    uf.merge(2, 3);
    auto groups = uf.groups();
    EXPECT_EQ(groups.size(), uf.numSets());
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.size();
    EXPECT_EQ(total, 10u);
    // The {0,5,9} group must appear as one unit.
    bool found = false;
    for (const auto &g : groups) {
        if (g.size() == 3) {
            found = true;
            EXPECT_EQ(g[0], 0u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(UnionFind, TransitiveChains)
{
    UnionFind uf(1000);
    for (std::size_t i = 0; i + 1 < 1000; ++i)
        uf.merge(i, i + 1);
    EXPECT_EQ(uf.numSets(), 1u);
    EXPECT_TRUE(uf.connected(0, 999));
    EXPECT_EQ(uf.sizeOf(500), 1000u);
}

} // namespace
} // namespace dnastore
