/**
 * @file
 * Tests for the Rashtchian-style distributed clusterer with q-gram and
 * w-gram signatures.
 */

#include <gtest/gtest.h>

#include "clustering/accuracy.hh"
#include "clustering/clusterer.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"

namespace dnastore
{
namespace
{

SequencingRun
makeWorkload(Rng &rng, std::size_t num_strands, double error_rate,
             double coverage)
{
    std::vector<Strand> strands;
    for (std::size_t i = 0; i < num_strands; ++i)
        strands.push_back(strand::random(rng, 130));
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));
    CoverageModel cov(coverage, CoverageDistribution::Poisson);
    return simulateSequencing(strands, channel, cov, rng);
}

TEST(Clusterer, EmptyAndSingletonInputs)
{
    RashtchianClusterer clusterer({});
    EXPECT_EQ(clusterer.cluster({}).numClusters(), 0u);
    const auto single = clusterer.cluster({"ACGTACGT"});
    ASSERT_EQ(single.numClusters(), 1u);
    EXPECT_EQ(single.clusters[0], std::vector<std::uint32_t>{0});
}

TEST(Clusterer, PerfectReadsClusterPerfectly)
{
    Rng rng(1);
    std::vector<Strand> strands;
    for (int i = 0; i < 100; ++i)
        strands.push_back(strand::random(rng, 130));
    PerfectChannel channel;
    CoverageModel coverage(5.0);
    const auto run = simulateSequencing(strands, channel, coverage, rng);

    RashtchianClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, run.origin, 1.0), 1.0);
    EXPECT_EQ(clustering.numClusters(), 100u);
}

class ClustererKindTest : public ::testing::TestWithParam<SignatureKind>
{
};

TEST_P(ClustererKindTest, AccurateAtModerateError)
{
    Rng rng(2);
    const auto run = makeWorkload(rng, 400, 0.06, 10.0);
    auto cfg = RashtchianClustererConfig::forErrorRate(0.06, 130);
    cfg.signature = GetParam();
    RashtchianClusterer clusterer(cfg);
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.9), 0.85)
        << signatureKindName(GetParam());
}

TEST_P(ClustererKindTest, StillAccurateAtHighError)
{
    // Table II reports ~0.98 accuracy even at 15% error; with the
    // error-adapted configuration the clusterer must stay well above
    // 0.8 on a smaller instance.
    Rng rng(3);
    const auto run = makeWorkload(rng, 200, 0.15, 10.0);
    auto cfg = RashtchianClustererConfig::forErrorRate(0.15, 130);
    cfg.signature = GetParam();
    RashtchianClusterer clusterer(cfg);
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.8), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Signatures, ClustererKindTest,
                         ::testing::Values(SignatureKind::QGram,
                                           SignatureKind::WGram));

TEST(Clusterer, StatsAreConsistent)
{
    Rng rng(4);
    const auto run = makeWorkload(rng, 150, 0.06, 8.0);
    RashtchianClusterer clusterer({});
    clusterer.cluster(run.reads);
    const auto &stats = clusterer.stats();
    EXPECT_GT(stats.signature_comparisons, 0u);
    EXPECT_GT(stats.merges, 0u);
    EXPECT_LE(stats.edit_distance_calls, stats.signature_comparisons);
    EXPECT_EQ(stats.rounds_run, clusterer.config().rounds);
    EXPECT_GE(stats.theta_high, stats.theta_low);
    EXPECT_GE(stats.signature_seconds, 0.0);
}

TEST(Clusterer, ThresholdLogicAvoidsEditCalls)
{
    // With theta_low = theta_high - 1 = huge, everything merges on
    // signatures alone; with theta_high = 0 nothing merges.
    Rng rng(5);
    const auto run = makeWorkload(rng, 50, 0.03, 5.0);

    RashtchianClustererConfig merge_all;
    merge_all.theta_low = 1000000;
    merge_all.theta_high = 1000001;
    RashtchianClusterer greedy(merge_all);
    const auto merged = greedy.cluster(run.reads);
    EXPECT_EQ(greedy.stats().edit_distance_calls, 0u);
    EXPECT_LT(merged.numClusters(), 50u); // over-merged on purpose

    // theta_high = 0 disables both the signature-merge and the edit
    // check; only distance-0 signature pairs (near-identical reads at
    // this low error rate) may still merge via theta_low.
    RashtchianClustererConfig merge_none;
    merge_none.theta_low = 0;
    merge_none.theta_high = 0;
    RashtchianClusterer strict(merge_none);
    const auto singletons = strict.cluster(run.reads);
    EXPECT_EQ(strict.stats().edit_distance_calls, 0u);
    EXPECT_GE(singletons.numClusters(), 50u);
}

TEST(Clusterer, MultiThreadedMatchesQuality)
{
    Rng rng(6);
    const auto run = makeWorkload(rng, 200, 0.06, 8.0);
    RashtchianClustererConfig cfg;
    cfg.num_threads = 4;
    RashtchianClusterer clusterer(cfg);
    const auto clustering = clusterer.cluster(run.reads);
    EXPECT_GT(clusteringAccuracy(clustering, run.origin, 0.9), 0.85);
    // All reads are accounted for exactly once.
    std::size_t total = 0;
    for (const auto &c : clustering.clusters)
        total += c.size();
    EXPECT_EQ(total, run.reads.size());
}

TEST(Clusterer, ClustersPartitionReads)
{
    Rng rng(7);
    const auto run = makeWorkload(rng, 100, 0.09, 6.0);
    RashtchianClusterer clusterer({});
    const auto clustering = clusterer.cluster(run.reads);
    std::vector<bool> seen(run.reads.size(), false);
    for (const auto &cluster : clustering.clusters) {
        for (std::uint32_t idx : cluster) {
            ASSERT_LT(idx, run.reads.size());
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Clusterer, ForErrorRateScalesEditThreshold)
{
    const auto low = RashtchianClustererConfig::forErrorRate(0.03, 130);
    const auto high = RashtchianClustererConfig::forErrorRate(0.15, 130);
    EXPECT_LT(low.edit_threshold, high.edit_threshold);
    // 2pL plus slack: at 15% on 130 nt two same-strand reads are ~39
    // edits apart on average.
    EXPECT_GE(high.edit_threshold, 45u);
    EXPECT_LE(high.edit_threshold, 75u);
    // High-error workloads get shorter keys and more rounds so clusters
    // still meet through corrupted anchor regions.
    EXPECT_LT(high.key_len, low.key_len);
    EXPECT_GT(high.rounds, low.rounds);
}

TEST(Clusterer, NameReflectsSignature)
{
    RashtchianClustererConfig cfg;
    EXPECT_EQ(RashtchianClusterer(cfg).name(), "rashtchian/q-gram");
    cfg.signature = SignatureKind::WGram;
    EXPECT_EQ(RashtchianClusterer(cfg).name(), "rashtchian/w-gram");
}

} // namespace
} // namespace dnastore
