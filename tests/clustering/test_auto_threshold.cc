/**
 * @file
 * Tests for automatic threshold configuration (paper Fig. 5).
 */

#include <gtest/gtest.h>

#include "clustering/auto_threshold.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"

namespace dnastore
{
namespace
{

TEST(AutoThreshold, TooFewReadsThrows)
{
    Rng rng(1);
    SignatureScheme scheme(SignatureKind::QGram, rng, 4, 40);
    EXPECT_THROW(autoConfigureThresholds({"ACGT"}, scheme, rng),
                 std::invalid_argument);
}

TEST(AutoThreshold, ThresholdsAreOrdered)
{
    Rng rng(2);
    SignatureScheme scheme(SignatureKind::QGram, rng, 4, 60);
    std::vector<Strand> reads;
    for (int i = 0; i < 300; ++i)
        reads.push_back(strand::random(rng, 130));
    const auto thresholds = autoConfigureThresholds(reads, scheme, rng);
    EXPECT_LT(thresholds.low, thresholds.high);
    EXPECT_GE(thresholds.low, 0);
}

TEST(AutoThreshold, SeparatesIntraFromInterOnClusteredData)
{
    Rng rng(3);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    CoverageModel coverage(10.0);
    std::vector<Strand> strands;
    for (int i = 0; i < 200; ++i)
        strands.push_back(strand::random(rng, 130));
    const auto run = simulateSequencing(strands, channel, coverage, rng);

    SignatureScheme scheme(SignatureKind::QGram, rng, 4, 60);
    const auto thresholds =
        autoConfigureThresholds(run.reads, scheme, rng);

    // Measure classification quality of the chosen thresholds.
    std::size_t intra_below_high = 0, intra_total = 0;
    std::size_t inter_above_low = 0, inter_total = 0;
    for (int t = 0; t < 500; ++t) {
        const std::size_t i = rng.below(run.reads.size());
        const std::size_t j = rng.below(run.reads.size());
        if (i == j)
            continue;
        const auto d = scheme.distance(scheme.compute(run.reads[i]),
                                       scheme.compute(run.reads[j]));
        if (run.origin[i] == run.origin[j]) {
            ++intra_total;
            intra_below_high += d < thresholds.high;
        } else {
            ++inter_total;
            inter_above_low += d > thresholds.low;
        }
    }
    ASSERT_GT(inter_total, 100u);
    // Nearly all unrelated pairs must sit above theta_low (no blind
    // merges of unrelated clusters).
    EXPECT_GT(static_cast<double>(inter_above_low) /
                  static_cast<double>(inter_total),
              0.99);
    if (intra_total > 10) {
        // Most same-cluster pairs fall below theta_high, so they at
        // least reach the edit-distance check.
        EXPECT_GT(static_cast<double>(intra_below_high) /
                      static_cast<double>(intra_total),
                  0.8);
    }
}

TEST(AutoThreshold, HistogramIsPopulated)
{
    Rng rng(4);
    SignatureScheme scheme(SignatureKind::QGram, rng, 4, 40);
    std::vector<Strand> reads;
    for (int i = 0; i < 100; ++i)
        reads.push_back(strand::random(rng, 100));
    AutoThresholdConfig cfg;
    cfg.small_sample = 10;
    cfg.large_sample = 50;
    const auto thresholds =
        autoConfigureThresholds(reads, scheme, rng, cfg);
    EXPECT_GT(thresholds.histogram.totalCount(), 100u);
    EXPECT_GT(thresholds.main_peak, 0);
}

TEST(AutoThreshold, WorksForWGramSignatures)
{
    Rng rng(5);
    SignatureScheme scheme(SignatureKind::WGram, rng, 4, 40);
    std::vector<Strand> reads;
    for (int i = 0; i < 200; ++i)
        reads.push_back(strand::random(rng, 120));
    const auto thresholds = autoConfigureThresholds(reads, scheme, rng);
    EXPECT_LT(thresholds.low, thresholds.high);
}

} // namespace
} // namespace dnastore
