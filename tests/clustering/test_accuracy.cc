/**
 * @file
 * Tests for the A_gamma clustering accuracy metric.
 */

#include <gtest/gtest.h>

#include "clustering/accuracy.hh"

namespace dnastore
{
namespace
{

TEST(Accuracy, PerfectClusteringScoresOne)
{
    Clustering clustering;
    clustering.clusters = {{0, 1, 2}, {3, 4}, {5}};
    const std::vector<std::uint32_t> origin = {0, 0, 0, 1, 1, 2};
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 1.0), 1.0);
}

TEST(Accuracy, MixedClusterCountsAsLost)
{
    Clustering clustering;
    clustering.clusters = {{0, 1, 3}, {2}, {4}};
    const std::vector<std::uint32_t> origin = {0, 0, 0, 1, 1};
    // Cluster {0,1,3} mixes origins 0 and 1 -> impure; {2} is pure but
    // covers 1/3 of origin 0; {4} covers 1/2 of origin 1.
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 0.5), 0.5);
    EXPECT_NEAR(clusteringAccuracy(clustering, origin, 0.3), 1.0, 1e-12);
}

TEST(Accuracy, SplitClustersFailAtGammaOne)
{
    Clustering clustering;
    clustering.clusters = {{0}, {1}, {2, 3}};
    const std::vector<std::uint32_t> origin = {0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 1.0), 0.5);
    // At gamma 0.5, a half-covering pure cluster is enough.
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 0.5), 1.0);
}

TEST(Accuracy, EmptyOriginYieldsZero)
{
    Clustering clustering;
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, {}, 1.0), 0.0);
}

TEST(Accuracy, GammaValidation)
{
    Clustering clustering;
    const std::vector<std::uint32_t> origin = {0};
    EXPECT_THROW(clusteringAccuracy(clustering, origin, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(clusteringAccuracy(clustering, origin, 1.5),
                 std::invalid_argument);
}

TEST(Accuracy, DuplicateOutputClustersDoNotDoubleCount)
{
    Clustering clustering;
    clustering.clusters = {{0}, {1}};
    const std::vector<std::uint32_t> origin = {0, 0};
    // Two pure half-clusters; at gamma 0.5 the origin counts once.
    EXPECT_DOUBLE_EQ(clusteringAccuracy(clustering, origin, 0.5), 1.0);
}

} // namespace
} // namespace dnastore
