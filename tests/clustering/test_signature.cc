/**
 * @file
 * Tests for q-gram and w-gram read signatures.
 */

#include <gtest/gtest.h>

#include "clustering/signature.hh"
#include "simulator/iid_channel.hh"

namespace dnastore
{
namespace
{

TEST(SignatureScheme, QGramBitsMatchPresence)
{
    SignatureScheme scheme(SignatureKind::QGram, {"AC", "GG", "TT"});
    const auto sig = scheme.compute("ACGTAC");
    ASSERT_EQ(sig.values.size(), 3u);
    EXPECT_EQ(sig.values[0], 1);  // AC present
    EXPECT_EQ(sig.values[1], 0);  // GG absent
    EXPECT_EQ(sig.values[2], 0);  // TT absent
}

TEST(SignatureScheme, WGramRecordsFirstPositions)
{
    SignatureScheme scheme(SignatureKind::WGram, {"AC", "GT", "CC"});
    const auto sig = scheme.compute("ACGTAC");
    ASSERT_EQ(sig.values.size(), 3u);
    EXPECT_EQ(sig.values[0], 0);
    EXPECT_EQ(sig.values[1], 2);
    EXPECT_EQ(sig.values[2], -1); // absent
}

TEST(SignatureScheme, QGramDistanceIsHamming)
{
    SignatureScheme scheme(SignatureKind::QGram, {"AA", "CC", "GG", "TT"});
    const auto a = scheme.compute("AACC"); // {1,1,0,0}
    const auto b = scheme.compute("AAGG"); // {1,0,1,0}
    EXPECT_EQ(scheme.distance(a, b), 2);
    EXPECT_EQ(scheme.distance(a, a), 0);
}

TEST(SignatureScheme, WGramDistanceIsL1)
{
    SignatureScheme scheme(SignatureKind::WGram, {"AC"});
    const auto a = scheme.compute("ACGT");   // pos 0
    const auto b = scheme.compute("GGACGT"); // pos 2
    const auto c = scheme.compute("GGGG");   // absent (-1)
    EXPECT_EQ(scheme.distance(a, b), 2);
    EXPECT_EQ(scheme.distance(a, c), 1);
    EXPECT_EQ(scheme.distance(c, c), 0);
}

TEST(SignatureScheme, DimensionMismatchThrows)
{
    SignatureScheme s1(SignatureKind::QGram, {"AC"});
    SignatureScheme s2(SignatureKind::QGram, {"AC", "GT"});
    const auto a = s1.compute("ACGT");
    const auto b = s2.compute("ACGT");
    EXPECT_THROW(s1.distance(a, b), std::invalid_argument);
}

TEST(SignatureScheme, EmptyProbeSetThrows)
{
    EXPECT_THROW(SignatureScheme(SignatureKind::QGram,
                                 std::vector<std::string>{}),
                 std::invalid_argument);
}

TEST(SignatureScheme, RandomConstructionHasRequestedShape)
{
    Rng rng(1);
    SignatureScheme scheme(SignatureKind::QGram, rng, 4, 32);
    EXPECT_EQ(scheme.dimensions(), 32u);
    for (const auto &probe : scheme.probeSet())
        EXPECT_EQ(probe.size(), 4u);
}

TEST(SignatureScheme, SameClusterCloserThanDifferent)
{
    // The statistical backbone of the clustering module: reads of the
    // same strand have closer signatures than reads of different
    // strands, for both schemes.
    Rng rng(2);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    const Strand s1 = strand::random(rng, 130);
    const Strand s2 = strand::random(rng, 130);

    for (SignatureKind kind : {SignatureKind::QGram, SignatureKind::WGram}) {
        SignatureScheme scheme(kind, rng, 4, 60);
        double intra = 0, inter = 0;
        const int trials = 60;
        for (int t = 0; t < trials; ++t) {
            const auto a = scheme.compute(channel.transmit(s1, rng));
            const auto b = scheme.compute(channel.transmit(s1, rng));
            const auto c = scheme.compute(channel.transmit(s2, rng));
            intra += static_cast<double>(scheme.distance(a, b));
            inter += static_cast<double>(scheme.distance(a, c));
        }
        EXPECT_LT(intra * 2.5, inter)
            << "kind=" << signatureKindName(kind);
    }
}

TEST(SignatureScheme, WGramSeparatesMoreThanQGram)
{
    // The paper's motivation for w-grams: positional signatures push
    // unrelated clusters further apart (relative to intra-cluster
    // spread), cutting gray-zone edit-distance checks.
    Rng rng(3);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.09));
    std::vector<Strand> strands;
    for (int i = 0; i < 30; ++i)
        strands.push_back(strand::random(rng, 130));

    auto separation = [&](SignatureKind kind) {
        SignatureScheme scheme(kind, rng, 4, 60);
        double intra = 0, inter = 0;
        int n = 0;
        for (const auto &s : strands) {
            const auto a = scheme.compute(channel.transmit(s, rng));
            const auto b = scheme.compute(channel.transmit(s, rng));
            const auto other = scheme.compute(
                channel.transmit(strands[rng.below(strands.size())], rng));
            intra += static_cast<double>(scheme.distance(a, b));
            inter += static_cast<double>(scheme.distance(a, other));
            ++n;
        }
        return inter / std::max(intra, 1.0);
    };

    // Not a strict theorem, but holds comfortably at these settings.
    EXPECT_GT(separation(SignatureKind::WGram) * 1.2,
              separation(SignatureKind::QGram));
}

TEST(SignatureKindName, Names)
{
    EXPECT_STREQ(signatureKindName(SignatureKind::QGram), "q-gram");
    EXPECT_STREQ(signatureKindName(SignatureKind::WGram), "w-gram");
}

} // namespace
} // namespace dnastore
