/**
 * @file
 * google-benchmark microbenchmarks for the computational kernels the
 * pipeline's complexity analysis rests on (paper Section IX-A):
 * edit-distance variants, signature computation and comparison,
 * Reed-Solomon coding, alignment, reconstruction and the GRU step.
 */

#include <benchmark/benchmark.h>

#include "clustering/signature.hh"
#include "dna/align.hh"
#include "dna/distance.hh"
#include "dna/strand.hh"
#include "ecc/reed_solomon.hh"
#include "nn/gru.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"

using namespace dnastore;

namespace
{

std::vector<Strand>
noisyPair(std::uint64_t seed, std::size_t len, double error)
{
    Rng rng(seed);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error));
    const Strand s = strand::random(rng, len);
    return {channel.transmit(s, rng), channel.transmit(s, rng)};
}

void
BM_LevenshteinFull(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    const auto pair = noisyPair(1, len, 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(levenshtein(pair[0], pair[1]));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevenshteinFull)->Range(32, 512)->Complexity();

void
BM_LevenshteinBanded(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    const auto pair = noisyPair(2, len, 0.06);
    const std::size_t cutoff = len / 5;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            boundedLevenshtein(pair[0], pair[1], cutoff));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevenshteinBanded)->Range(32, 512)->Complexity();

void
BM_LevenshteinMyers(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    const auto pair = noisyPair(12, len, 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(myersLevenshtein(pair[0], pair[1]));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevenshteinMyers)->Range(32, 512)->Complexity();

void
BM_SignatureCompute(benchmark::State &state)
{
    Rng rng(3);
    const auto kind = state.range(0) == 0 ? SignatureKind::QGram
                                          : SignatureKind::WGram;
    SignatureScheme scheme(kind, rng, 4, 60);
    const Strand read = strand::random(rng, 132);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.compute(read));
}
BENCHMARK(BM_SignatureCompute)->Arg(0)->Arg(1);

void
BM_SignatureDistance(benchmark::State &state)
{
    Rng rng(4);
    const auto kind = state.range(0) == 0 ? SignatureKind::QGram
                                          : SignatureKind::WGram;
    SignatureScheme scheme(kind, rng, 4, 60);
    const auto a = scheme.compute(strand::random(rng, 132));
    const auto b = scheme.compute(strand::random(rng, 132));
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.distance(a, b));
}
BENCHMARK(BM_SignatureDistance)->Arg(0)->Arg(1);

void
BM_RsEncode(benchmark::State &state)
{
    ReedSolomon rs(255, static_cast<std::size_t>(state.range(0)));
    Rng rng(5);
    std::vector<std::uint8_t> message(rs.k());
    for (auto &b : message)
        b = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(message));
}
BENCHMARK(BM_RsEncode)->Arg(223)->Arg(127);

void
BM_RsDecodeErrors(benchmark::State &state)
{
    ReedSolomon rs(255, 223);
    Rng rng(6);
    std::vector<std::uint8_t> message(rs.k());
    for (auto &b : message)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto clean = rs.encode(message);
    const auto errors = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        auto corrupted = clean;
        for (const auto pos : rng.sampleIndices(rs.n(), errors))
            corrupted[pos] ^= 0x5A;
        state.ResumeTiming();
        benchmark::DoNotOptimize(rs.decode(corrupted));
    }
}
BENCHMARK(BM_RsDecodeErrors)->Arg(0)->Arg(4)->Arg(16);

void
BM_GlobalAlign(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    const auto pair = noisyPair(7, len, 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(globalAlign(pair[0], pair[1]));
}
BENCHMARK(BM_GlobalAlign)->Range(32, 256);

void
BM_Reconstruct(benchmark::State &state)
{
    Rng rng(8);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    const Strand original = strand::random(rng, 120);
    const auto coverage = static_cast<std::size_t>(state.range(1));
    std::vector<Strand> cluster;
    for (std::size_t c = 0; c < coverage; ++c)
        cluster.push_back(channel.transmit(original, rng));

    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    NwConsensusReconstructor nw;
    const Reconstructor *algo = state.range(0) == 0
        ? static_cast<const Reconstructor *>(&bma)
        : state.range(0) == 1
            ? static_cast<const Reconstructor *>(&dbma)
            : static_cast<const Reconstructor *>(&nw);
    for (auto _ : state)
        benchmark::DoNotOptimize(algo->reconstruct(cluster, 120));
}
BENCHMARK(BM_Reconstruct)
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({2, 10})
    ->Args({0, 50})
    ->Args({1, 50})
    ->Args({2, 50});

void
BM_GruStep(benchmark::State &state)
{
    const auto hidden = static_cast<std::size_t>(state.range(0));
    Rng rng(9);
    nn::GruCell cell(4, hidden, "bench");
    cell.init(rng, 0.2f);
    nn::Vec x(4, 0.5f);
    nn::Vec h(hidden, 0.1f);
    nn::GruCache cache;
    for (auto _ : state)
        benchmark::DoNotOptimize(cell.forward(x, h, cache));
}
BENCHMARK(BM_GruStep)->Arg(32)->Arg(64)->Arg(128);

} // namespace

BENCHMARK_MAIN();
