/**
 * @file
 * Ablation: automatic threshold configuration vs a manual sweep (paper
 * Section VI-B).  The clusterer is run with a range of hand-picked
 * theta_high values and with the auto-configured thresholds; the auto
 * choice should land near the accuracy/edit-call sweet spot without any
 * tuning.
 *
 * Usage:
 *   ablation_thresholds [--strands=N] [--error-rate=P] [--coverage=N]
 */

#include <iostream>
#include <vector>

#include "clustering/accuracy.hh"
#include "clustering/clusterer.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t num_strands =
        static_cast<std::size_t>(args.getInt("strands", 800));
    const double error_rate = args.getDouble("error-rate", 0.09);
    const double coverage = args.getDouble("coverage", 10.0);

    std::cout << "=== Ablation: auto vs manual clustering thresholds ==="
              << "\n" << num_strands << " strands, error rate "
              << error_rate << ", coverage " << coverage << "\n\n";

    Rng rng(123);
    std::vector<Strand> strands;
    for (std::size_t s = 0; s < num_strands; ++s)
        strands.push_back(strand::random(rng, 132));
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));
    CoverageModel cov(coverage, CoverageDistribution::Poisson);
    const auto run = simulateSequencing(strands, channel, cov, rng);

    Table table;
    table.header({"thresholds", "accuracy(0.9)", "clusters",
                  "edit calls", "seconds"});

    auto run_once = [&](std::int64_t theta_low, std::int64_t theta_high,
                        const std::string &label) {
        auto cfg = RashtchianClustererConfig::forErrorRate(error_rate, 132);
        cfg.theta_low = theta_low;
        cfg.theta_high = theta_high;
        RashtchianClusterer clusterer(cfg);
        const auto clustering = clusterer.cluster(run.reads);
        const auto &stats = clusterer.stats();
        table.row({label,
                   Table::fmt(
                       clusteringAccuracy(clustering, run.origin, 0.9), 4),
                   Table::fmt(clustering.numClusters()),
                   Table::fmt(stats.edit_distance_calls),
                   Table::fmt(stats.clustering_seconds +
                                  stats.signature_seconds,
                              2)});
        return std::make_pair(stats.theta_low, stats.theta_high);
    };

    // Manual sweep of theta_high with a fixed conservative theta_low.
    for (const std::int64_t theta_high : {6, 10, 14, 18, 22, 26, 30}) {
        run_once(3, theta_high,
                 "manual low=3 high=" + std::to_string(theta_high));
    }
    // Auto-configured thresholds.
    const auto chosen = run_once(-1, -1, "auto");

    std::cout << table.text() << "\nauto-configured thresholds: low="
              << chosen.first << " high=" << chosen.second
              << "\nExpected shape: accuracy saturates once theta_high "
                 "clears the same-cluster\nmode; wider settings only add "
                 "edit-distance calls. The auto choice sits at\nthe "
                 "saturated plateau without manual tuning.\n";
    return 0;
}
