/**
 * @file
 * Reproduces paper Figure 6: per-index reconstruction error rate of the
 * three trace-reconstruction algorithms on identical clusters.
 *
 * The paper evaluates this figure on real wetlab data, whose bursty,
 * position-dependent errors are what separate the algorithms; the
 * default channel here is therefore the virtual wetlab.  Pass
 * --channel=iid for the naive i.i.d. channel instead (the gap between
 * the algorithms shrinks markedly — part of the paper's Section V
 * argument that naive simulation misjudges downstream modules).
 *
 * Expected shape:
 *  - single-sided BMA: error grows from left to right (misalignment
 *    propagates rightward);
 *  - double-sided BMA: roughly half the peak error, concentrated in the
 *    middle indexes;
 *  - Needleman-Wunsch consensus: flattest and lowest profile, most
 *    perfectly reconstructed strands.
 *
 * Usage:
 *   fig6_reconstruction [--clusters=N] [--coverage=N] [--error-rate=P]
 *       [--strand-len=L] [--channel=wetlab|iid] [--csv=path]
 */

#include <iostream>
#include <vector>

#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t num_clusters =
        static_cast<std::size_t>(args.getInt("clusters", 1500));
    const std::size_t coverage =
        static_cast<std::size_t>(args.getInt("coverage", 10));
    const double error_rate = args.getDouble("error-rate", 0.06);
    const std::size_t strand_len =
        static_cast<std::size_t>(args.getInt("strand-len", 120));
    const std::string channel_name = args.get("channel", "wetlab");
    const std::string csv_path = args.get("csv", "");

    std::cout << "=== Fig. 6: trace reconstruction error profiles ===\n"
              << num_clusters << " clusters, coverage " << coverage
              << ", error rate " << error_rate << ", strand length "
              << strand_len << ", channel " << channel_name << "\n\n";

    Rng rng(66);
    VirtualWetlabConfig wetlab_cfg;
    wetlab_cfg.base_error_rate = error_rate;
    VirtualWetlabChannel wetlab(wetlab_cfg);
    IidChannel iid(IidChannelConfig::fromTotalErrorRate(error_rate));
    const Channel &channel = channel_name == "iid"
        ? static_cast<const Channel &>(iid)
        : static_cast<const Channel &>(wetlab);
    std::vector<Strand> originals;
    std::vector<std::vector<Strand>> clusters;
    for (std::size_t i = 0; i < num_clusters; ++i) {
        originals.push_back(strand::random(rng, strand_len));
        std::vector<Strand> reads;
        for (std::size_t c = 0; c < coverage; ++c)
            reads.push_back(channel.transmit(originals.back(), rng));
        clusters.push_back(std::move(reads));
    }

    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    NwConsensusReconstructor nw;
    const std::vector<std::pair<std::string, const Reconstructor *>>
        algos = {{"BMA", &bma}, {"DBMA", &dbma}, {"NW", &nw}};

    std::vector<ReconstructionProfile> profiles;
    Table summary;
    summary.header({"algorithm", "mean error", "peak error",
                    "peak index", "perfect strands", "seconds"});
    for (const auto &[name, algo] : algos) {
        WallTimer timer;
        std::vector<Strand> reconstructed;
        reconstructed.reserve(clusters.size());
        for (const auto &cluster : clusters)
            reconstructed.push_back(
                algo->reconstruct(cluster, strand_len));
        const double seconds = timer.seconds();
        auto profile = measureReconstruction(originals, reconstructed);
        double peak = 0;
        std::size_t peak_index = 0;
        for (std::size_t i = 0; i < profile.error_rate.size(); ++i) {
            if (profile.error_rate[i] > peak) {
                peak = profile.error_rate[i];
                peak_index = i;
            }
        }
        summary.row({name, Table::fmt(profile.mean_error_rate, 4),
                     Table::fmt(peak, 4), Table::fmt(peak_index),
                     Table::fmt(profile.perfect_strands) + "/" +
                         Table::fmt(profile.total_strands),
                     Table::fmt(seconds, 2)});
        profiles.push_back(std::move(profile));
    }
    std::cout << summary.text() << "\n";

    Table fig;
    fig.header({"index", "BMA", "DBMA", "NW"});
    for (std::size_t i = 0; i < strand_len; i += 4) {
        fig.row({Table::fmt(i), Table::fmt(profiles[0].error_rate[i], 4),
                 Table::fmt(profiles[1].error_rate[i], 4),
                 Table::fmt(profiles[2].error_rate[i], 4)});
    }
    std::cout << "Fig. 6 series (per-index error rate):\n" << fig.text();
    if (!csv_path.empty() && fig.writeCsv(csv_path))
        std::cout << "wrote " << csv_path << "\n";

    // Shape checks.
    const auto &p_bma = profiles[0].error_rate;
    const auto &p_dbma = profiles[1].error_rate;
    double bma_head = 0, bma_tail = 0, dbma_mid = 0, dbma_edges = 0;
    for (std::size_t i = 0; i < strand_len / 4; ++i) {
        bma_head += p_bma[i];
        bma_tail += p_bma[strand_len - 1 - i];
        dbma_edges += p_dbma[i] + p_dbma[strand_len - 1 - i];
        dbma_mid += p_dbma[strand_len / 2 - strand_len / 8 + i];
    }
    std::cout << "\nshape check: BMA error grows rightward: "
              << (bma_tail > 2 * bma_head ? "yes" : "NO")
              << "\nshape check: DBMA concentrates errors mid-strand: "
              << (dbma_mid > dbma_edges ? "yes" : "NO")
              << "\nshape check: NW lowest mean error: "
              << (profiles[2].mean_error_rate <=
                          profiles[0].mean_error_rate &&
                      profiles[2].mean_error_rate <=
                          profiles[1].mean_error_rate
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
