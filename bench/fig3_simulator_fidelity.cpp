/**
 * @file
 * Reproduces paper Figure 3 and Table I: how faithfully do different
 * wetlab simulators mimic real sequencing data?
 *
 * The paper measures this end to end: reads from each simulator are
 * pushed through the double-sided-BMA reconstruction module, and the
 * per-index reconstruction error profile is compared against the
 * profile obtained on real data.  We do not have the paper's 270K-read
 * Nanopore dataset, so the "real" data is produced by the hidden
 * virtual-wetlab reference channel (see DESIGN.md, Substitutions); the
 * simulators under test never see its internals:
 *
 *  - Rashtchian: i.i.d. insertion/deletion/substitution channel whose
 *    total rate is matched to the real data's measured rate;
 *  - SOLQC: nucleotide-conditioned rates, pre-insertions only, matched
 *    the same way;
 *  - RNN: the GRU+attention seq2seq model trained on clean/noisy pairs
 *    from the real data (training split), sampling temperature
 *    calibrated on the validation split;
 *  - Markov (extra ablation): position/context statistical model fitted
 *    on the same training pairs.
 *
 * Metrics (paper Section V-A):
 *  (i)   per-index reconstruction error rate      -> Fig. 3 series
 *  (ii)  average of (i) over all indexes          -> Table I row 1
 *  (iii) mean |profile - real profile|            -> Table I row 2
 *  (iv)  number of perfectly reconstructed strands-> Table I row 3
 *
 * Expected shape: the naive channels are much EASIER to reconstruct
 * than real data (fewer errors after reconstruction, more perfect
 * strands); the learned models track the real profile closely.
 *
 * Usage:
 *   fig3_simulator_fidelity [--quick] [--train-clusters=N]
 *       [--test-clusters=N] [--strand-len=L] [--coverage=N]
 *       [--epochs=N] [--hidden=N] [--model-cache=path] [--csv=path]
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "nn/seq2seq.hh"
#include "reconstruction/bma.hh"
#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"
#include "simulator/markov_channel.hh"
#include "simulator/seq2seq_channel.hh"
#include "simulator/solqc_channel.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace dnastore;

namespace
{

struct Dataset
{
    std::vector<Strand> strands;                 //!< Clean originals.
    std::vector<std::vector<Strand>> clusters;   //!< Reads per strand.
};

Dataset
sequenceWith(const Channel &channel, const std::vector<Strand> &strands,
             std::size_t coverage, Rng &rng)
{
    Dataset out;
    out.strands = strands;
    out.clusters.resize(strands.size());
    for (std::size_t s = 0; s < strands.size(); ++s)
        for (std::size_t c = 0; c < coverage; ++c)
            out.clusters[s].push_back(channel.transmit(strands[s], rng));
    return out;
}

ReconstructionProfile
reconstructAndMeasure(const Dataset &dataset)
{
    DoubleSidedBmaReconstructor dbma;
    std::vector<Strand> reconstructed;
    reconstructed.reserve(dataset.clusters.size());
    const std::size_t len = dataset.strands.front().size();
    for (const auto &cluster : dataset.clusters)
        reconstructed.push_back(dbma.reconstruct(cluster, len));
    return measureReconstruction(dataset.strands, reconstructed);
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const bool quick = args.getBool("quick");
    const std::size_t train_clusters = static_cast<std::size_t>(
        args.getInt("train-clusters", quick ? 80 : 250));
    const std::size_t val_clusters = static_cast<std::size_t>(
        args.getInt("val-clusters", quick ? 10 : 30));
    const std::size_t test_clusters = static_cast<std::size_t>(
        args.getInt("test-clusters", quick ? 120 : 400));
    const std::size_t strand_len =
        static_cast<std::size_t>(args.getInt("strand-len", quick ? 50 : 60));
    const std::size_t coverage =
        static_cast<std::size_t>(args.getInt("coverage", 8));
    const std::size_t train_coverage =
        static_cast<std::size_t>(args.getInt("train-coverage", 5));
    const std::size_t epochs =
        static_cast<std::size_t>(args.getInt("epochs", quick ? 12 : 30));
    const std::size_t pretrain_epochs = static_cast<std::size_t>(
        args.getInt("pretrain-epochs", quick ? 4 : 8));
    const std::size_t hidden =
        static_cast<std::size_t>(args.getInt("hidden", 32));
    const double base_error = args.getDouble("base-error", 0.07);
    const std::string model_cache = args.get("model-cache", "");
    const std::string csv_path = args.get("csv", "");

    setLogLevel(LogLevel::Warn);
    Rng rng(20240404);
    WallTimer total_timer;

    std::cout << "=== Fig. 3 / Table I: simulator fidelity ===\n"
              << "clusters (train/val/test): " << train_clusters << "/"
              << val_clusters << "/" << test_clusters
              << ", strand length " << strand_len << ", coverage "
              << coverage << "\n\n";

    // ---- The "real" dataset (virtual wetlab as the hidden channel). --
    VirtualWetlabConfig real_cfg;
    real_cfg.base_error_rate = base_error;
    VirtualWetlabChannel real_channel(real_cfg);
    std::vector<Strand> all_strands;
    const std::size_t total_clusters =
        train_clusters + val_clusters + test_clusters;
    for (std::size_t i = 0; i < total_clusters; ++i)
        all_strands.push_back(strand::random(rng, strand_len));

    const std::vector<Strand> train_strands(
        all_strands.begin(),
        all_strands.begin() + static_cast<long>(train_clusters));
    const std::vector<Strand> val_strands(
        all_strands.begin() + static_cast<long>(train_clusters),
        all_strands.begin() +
            static_cast<long>(train_clusters + val_clusters));
    const std::vector<Strand> test_strands(
        all_strands.begin() +
            static_cast<long>(train_clusters + val_clusters),
        all_strands.end());

    const Dataset real_train =
        sequenceWith(real_channel, train_strands, train_coverage, rng);
    const Dataset real_test =
        sequenceWith(real_channel, test_strands, coverage, rng);

    // Measured channel-level error rate of the real data: the naive
    // simulators are configured from this, exactly as a researcher
    // would match a simulator to published error rates.
    std::vector<Strand> flat_clean, flat_noisy;
    std::vector<nn::StrandPair> train_pairs;
    for (std::size_t s = 0; s < real_train.strands.size(); ++s) {
        for (const Strand &read : real_train.clusters[s]) {
            flat_clean.push_back(real_train.strands[s]);
            flat_noisy.push_back(read);
            train_pairs.push_back({real_train.strands[s], read});
        }
    }
    const auto channel_profile =
        measureChannelErrors(flat_clean, flat_noisy);
    const double real_rate = channel_profile.mean_error_rate;
    std::cout << "measured real channel error rate: "
              << Table::fmt(real_rate, 4) << " ("
              << train_pairs.size() << " training pairs)\n";

    // ---- Simulators under test. ----
    IidChannel rashtchian(IidChannelConfig::fromTotalErrorRate(real_rate));
    SolqcChannel solqc(SolqcChannelConfig::fromTotalErrorRate(real_rate));

    WallTimer train_timer;
    Seq2SeqChannelConfig rnn_cfg;
    rnn_cfg.model.hidden = hidden;
    rnn_cfg.model.attention = hidden;
    rnn_cfg.model.adam.lr = 3e-3f;
    rnn_cfg.epochs = 1; // driven manually for the decay schedule
    Seq2SeqChannel rnn(rnn_cfg);
    bool loaded = false;
    if (!model_cache.empty() && rnn.model().load(model_cache)) {
        std::cout << "loaded RNN parameters from " << model_cache << "\n";
        loaded = true;
    }
    if (!loaded) {
        // Curriculum: a few epochs on identity pairs first teach the
        // attention to copy (the hard part), then the real pairs teach
        // the noise structure.
        if (pretrain_epochs > 0) {
            std::vector<nn::StrandPair> identity_pairs;
            identity_pairs.reserve(train_pairs.size());
            for (const auto &pair : train_pairs)
                identity_pairs.push_back({pair.clean, pair.clean});
            rnn.model().train(identity_pairs, pretrain_epochs, 8, rng);
            std::cout << "identity pretraining done ("
                      << Table::fmt(train_timer.seconds(), 1) << "s)\n";
        }
        const double final_loss =
            rnn.model().train(train_pairs, epochs, 8, rng, 0.985);
        std::cout << "trained RNN for " << pretrain_epochs << "+" << epochs
                  << " epochs in " << Table::fmt(train_timer.seconds(), 1)
                  << "s (final loss " << Table::fmt(final_loss, 4)
                  << ")\n";
        if (!model_cache.empty() && rnn.model().save(model_cache))
            std::cout << "cached RNN parameters to " << model_cache << "\n";
    }
    // Calibrate sampling temperature on the validation split so the
    // sampled error rate matches the real channel's.
    const double temperature =
        rnn.model().calibrateTemperature(val_strands, real_rate, rng, 2);
    std::cout << "calibrated sampling temperature: "
              << Table::fmt(temperature, 3) << "\n";
    rnn.setSampleTemperature(temperature);

    MarkovChannel markov(MarkovChannel::fit(flat_clean, flat_noisy));

    // ---- Run every simulator through DBMA reconstruction. ----
    std::map<std::string, ReconstructionProfile> profiles;
    profiles["Real"] = reconstructAndMeasure(real_test);
    profiles["Rashtchian"] = reconstructAndMeasure(
        sequenceWith(rashtchian, test_strands, coverage, rng));
    profiles["SOLQC"] = reconstructAndMeasure(
        sequenceWith(solqc, test_strands, coverage, rng));
    {
        WallTimer sample_timer;
        profiles["RNN"] = reconstructAndMeasure(
            sequenceWith(rnn, test_strands, coverage, rng));
        std::cout << "RNN sampling took "
                  << Table::fmt(sample_timer.seconds(), 1) << "s\n";
    }
    profiles["Markov"] = reconstructAndMeasure(
        sequenceWith(markov, test_strands, coverage, rng));

    // ---- Table I. ----
    const auto &real = profiles.at("Real");
    const std::vector<std::string> order = {"Rashtchian", "SOLQC", "RNN",
                                            "Markov", "Real"};
    Table table;
    table.header({"metric", "Rashtchian", "SOLQC", "RNN", "Markov",
                  "Real"});
    std::vector<std::string> row_ii = {"(ii) avg error rate"};
    std::vector<std::string> row_iii = {"(iii) avg |diff| vs real"};
    std::vector<std::string> row_iv = {"(iv) perfectly reconstructed"};
    for (const auto &name : order) {
        const auto &profile = profiles.at(name);
        row_ii.push_back(Table::fmt(profile.mean_error_rate * 100, 2) +
                         "%");
        row_iii.push_back(
            name == "Real"
                ? "-"
                : Table::fmt(profileDeviation(profile, real) * 100, 2) +
                    "%");
        row_iv.push_back(Table::fmt(profile.perfect_strands) + "/" +
                         Table::fmt(profile.total_strands));
    }
    table.row(row_ii);
    table.row(row_iii);
    table.row(row_iv);
    std::cout << "\nTable I (simulator fidelity through DBMA "
                 "reconstruction):\n"
              << table.text() << "\n";

    // ---- Fig. 3: per-index error-rate series. ----
    Table fig;
    fig.header({"index", "Rashtchian", "SOLQC", "RNN", "Markov", "Real"});
    const std::size_t stride = strand_len >= 40 ? 4 : 2;
    for (std::size_t i = 0; i < strand_len; i += stride) {
        std::vector<std::string> row = {Table::fmt(i)};
        for (const auto &name : order)
            row.push_back(
                Table::fmt(profiles.at(name).error_rate[i], 4));
        fig.row(row);
    }
    std::cout << "Fig. 3 (per-index reconstruction error rate):\n"
              << fig.text() << "\n";
    if (!csv_path.empty() && fig.writeCsv(csv_path))
        std::cout << "wrote series to " << csv_path << "\n";

    // ---- Shape checks the paper's narrative rests on. ----
    const double rash_err = profiles.at("Rashtchian").mean_error_rate;
    const double rnn_dev = profileDeviation(profiles.at("RNN"), real);
    const double rash_dev =
        profileDeviation(profiles.at("Rashtchian"), real);
    std::cout << "shape check: naive sim easier than real data: "
              << (rash_err < real.mean_error_rate ? "yes" : "NO") << "\n"
              << "shape check: RNN deviation < Rashtchian deviation: "
              << (rnn_dev < rash_dev ? "yes" : "NO") << "\n"
              << "total wall time: " << Table::fmt(total_timer.seconds(), 1)
              << "s\n";
    return 0;
}
