/**
 * @file
 * Ablation: unconstrained coding with data randomization (paper Section
 * II-D).  Structured data (long zero runs, repeated text) maps to long
 * homopolymers and skewed GC content without randomization — both are
 * hostile to synthesis and sequencing.  The randomizer fixes the
 * distribution at a cost of exactly zero coding density.
 *
 * Usage:
 *   ablation_randomizer
 */

#include <iostream>
#include <vector>

#include "codec/randomizer.hh"
#include "dna/strand.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace dnastore;

namespace
{

struct Workload
{
    std::string name;
    std::vector<std::uint8_t> data;
};

void
measure(const std::vector<std::uint8_t> &data, double &max_run,
        double &gc, double &runs_over_4)
{
    // Chop into 30-byte molecules like the default codec geometry.
    RunningStats run_stats, gc_stats;
    std::size_t over4 = 0, molecules = 0;
    for (std::size_t lo = 0; lo + 30 <= data.size(); lo += 30) {
        const std::vector<std::uint8_t> chunk(
            data.begin() + static_cast<long>(lo),
            data.begin() + static_cast<long>(lo + 30));
        const Strand s = strand::fromBytes(chunk);
        const std::size_t run = strand::maxHomopolymerRun(s);
        run_stats.add(static_cast<double>(run));
        gc_stats.add(strand::gcContent(s));
        over4 += run > 4;
        ++molecules;
    }
    max_run = run_stats.max();
    gc = gc_stats.mean();
    runs_over_4 = molecules == 0
        ? 0.0
        : static_cast<double>(over4) / static_cast<double>(molecules);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: data randomization for unconstrained "
                 "coding ===\n\n";

    std::vector<Workload> workloads;
    workloads.push_back({"zeros", std::vector<std::uint8_t>(6000, 0)});
    workloads.push_back({"0xFF fill", std::vector<std::uint8_t>(6000, 0xFF)});
    {
        std::vector<std::uint8_t> text;
        const std::string phrase = "ATTACK AT DAWN. ";
        while (text.size() < 6000)
            text.insert(text.end(), phrase.begin(), phrase.end());
        workloads.push_back({"repeated text", std::move(text)});
    }
    {
        std::vector<std::uint8_t> ramp(6000);
        for (std::size_t i = 0; i < ramp.size(); ++i)
            ramp[i] = static_cast<std::uint8_t>(i / 24);
        workloads.push_back({"slow ramp", std::move(ramp)});
    }

    Table table;
    table.header({"workload", "variant", "max homopolymer", "mean GC",
                  "molecules with run>4"});

    Randomizer randomizer;
    for (const auto &workload : workloads) {
        double max_run = 0, gc = 0, over4 = 0;
        measure(workload.data, max_run, gc, over4);
        table.row({workload.name, "raw", Table::fmt(max_run, 0),
                   Table::fmt(gc, 3), Table::fmt(over4 * 100, 1) + "%"});

        auto randomized = workload.data;
        randomizer.apply(randomized);
        measure(randomized, max_run, gc, over4);
        table.row({workload.name, "randomized", Table::fmt(max_run, 0),
                   Table::fmt(gc, 3), Table::fmt(over4 * 100, 1) + "%"});
    }

    std::cout << table.text()
              << "\nExpected shape: raw structured data produces "
                 "molecule-length homopolymers\nand degenerate GC "
                 "content; randomized variants sit near GC 0.5 with "
                 "short runs.\n";
    return 0;
}
