/**
 * @file
 * Archive random-access throughput: serial vs threaded shard decode.
 *
 * Stores one multi-shard object in an archive, then retrieves it twice
 * through the same noisy channel — once with a single worker and once
 * with a thread pool.  Shards decode independently (each has its own
 * primer pair, reads, clusters and codec run), so the parallel get
 * should approach linear speedup until shard count or core count runs
 * out.  The acceptance bar for this bench is >1.5x with 4 threads on a
 * 4+ shard object.
 *
 * Usage:
 *   archive_throughput [--object-bytes=N] [--shard-bytes=N]
 *                      [--threads=N] [--error-rate=P] [--coverage=N]
 *                      [--repeats=N] [--json=path]
 *
 * --json writes a schema-versioned document
 * (schema dnastore.bench_archive_throughput) with per-mode wall times,
 * the speedup ratio and the retrieval metrics delta; the checked-in
 * baseline lives at bench/baselines/BENCH_archive_throughput.json
 * (regeneration command in README.md).
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "util/args.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace dnastore;

namespace
{

double
seconds(std::chrono::steady_clock::time_point start,
        std::chrono::steady_clock::time_point stop)
{
    return std::chrono::duration<double>(stop - start).count();
}

struct ModeResult
{
    std::string mode;
    std::size_t threads = 1;
    double best_seconds = 0.0;
    bool ok = false;
};

/**
 * Thread-pool attribution extracted from the retrieval metrics delta:
 * how busy the workers were and how long tasks sat queued.  This is
 * what turns a disappointing speedup number into a diagnosis (workers
 * starved vs queue backed up vs pool never used).
 */
struct PoolAttribution
{
    double busy_fraction = 0.0;          //!< busy / (busy + idle).
    double queue_wait_p99_seconds = 0.0; //!< enqueue -> dequeue p99.
    std::uint64_t tasks = 0;
    double utilization_max = 0.0; //!< Peak pool-utilization gauge.
};

PoolAttribution
poolAttribution(const obs::MetricsSnapshot &delta)
{
    PoolAttribution out;
    const auto counter = [&delta](const char *name) -> std::uint64_t {
        const auto it = delta.counters.find(name);
        return it == delta.counters.end() ? 0 : it->second;
    };
    const std::uint64_t busy =
        counter("util.thread_pool.busy_micros_total");
    const std::uint64_t idle =
        counter("util.thread_pool.idle_micros_total");
    if (busy + idle > 0)
        out.busy_fraction = static_cast<double>(busy) /
                            static_cast<double>(busy + idle);
    out.tasks = counter("util.thread_pool.tasks_total");
    const auto hist =
        delta.histograms.find("util.thread_pool.queue_wait_seconds");
    if (hist != delta.histograms.end())
        out.queue_wait_p99_seconds =
            obs::histogramQuantile(hist->second, 0.99);
    const auto gauge = delta.gauges.find("util.thread_pool.utilization");
    if (gauge != delta.gauges.end())
        out.utilization_max = gauge->second.max;
    return out;
}

std::string
benchJson(const std::vector<ModeResult> &modes, std::size_t object_bytes,
          std::size_t shards, double speedup,
          const obs::MetricsSnapshot &metrics,
          const PoolAttribution &attribution)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.bench_archive_throughput");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});
    json.key("object_bytes");
    json.value(std::uint64_t{object_bytes});
    json.key("shards");
    json.value(std::uint64_t{shards});
    json.key("modes");
    json.beginArray();
    for (const ModeResult &mode : modes) {
        json.beginObject();
        json.key("mode");
        json.value(mode.mode);
        json.key("threads");
        json.value(std::uint64_t{mode.threads});
        json.key("get_seconds");
        json.value(mode.best_seconds);
        json.key("round_trip_ok");
        json.value(mode.ok);
        json.endObject();
    }
    json.endArray();
    json.key("speedup");
    json.value(speedup);
    json.key("attribution");
    json.beginObject();
    json.key("busy_fraction");
    json.value(attribution.busy_fraction);
    json.key("queue_wait_p99_seconds");
    json.value(attribution.queue_wait_p99_seconds);
    json.key("tasks");
    json.value(std::uint64_t{attribution.tasks});
    json.key("utilization_max");
    json.value(attribution.utilization_max);
    json.endObject();
    json.key("metrics");
    obs::writeMetricsValue(json, metrics);
    json.endObject();
    return json.text();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t object_bytes =
        static_cast<std::size_t>(args.getInt("object-bytes", 4096));
    const std::size_t shard_bytes =
        static_cast<std::size_t>(args.getInt("shard-bytes", 512));
    const std::size_t threads =
        static_cast<std::size_t>(args.getInt("threads", 4));
    const std::size_t repeats =
        static_cast<std::size_t>(args.getInt("repeats", 3));
    const std::string json_path = args.get("json", "");

    archive::ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = shard_bytes;

    const std::string dir = "/tmp/dnastore_bench_archive_throughput";
    std::filesystem::remove_all(dir);
    auto opened = archive::Archive::create(dir, params);
    if (!opened.ok()) {
        std::cerr << "cannot create archive: " << opened.error << "\n";
        return 1;
    }
    archive::Archive &tube = *opened.archive;

    Rng rng(4242);
    std::vector<std::uint8_t> data(object_bytes);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto put = tube.put("object", data, threads);
    if (!put.ok()) {
        std::cerr << "put failed: " << put.error << "\n";
        return 1;
    }

    archive::RetrievalConfig retrieval;
    retrieval.error_rate = args.getDouble("error-rate", 0.03);
    retrieval.coverage = args.getDouble("coverage", 12.0);
    retrieval.seed = 11;

    std::cout << "=== archive random-access throughput ===\n"
              << "object " << object_bytes << " bytes in " << put.shards
              << " shards of <=" << shard_bytes << " bytes, "
              << put.strands << " molecules, error rate "
              << retrieval.error_rate << ", coverage "
              << retrieval.coverage << "\n\n";

    // Best-of-N wall time per mode; per-shard seeds make both modes
    // decode the same work, so the comparison is thread overhead only.
    std::vector<ModeResult> modes;
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    for (const std::size_t workers :
         std::vector<std::size_t>{1, threads}) {
        ModeResult mode;
        mode.mode = workers == 1 ? "serial" : "threaded";
        mode.threads = workers;
        retrieval.num_threads = workers;
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const auto result = tube.get("object", retrieval);
            const auto stop = std::chrono::steady_clock::now();
            const double elapsed = seconds(start, stop);
            if (rep == 0 || elapsed < mode.best_seconds)
                mode.best_seconds = elapsed;
            mode.ok = result.ok() && result.data == data;
            if (!mode.ok) {
                std::cerr << mode.mode << " get failed: " << result.error
                          << "\n";
                return 1;
            }
        }
        modes.push_back(mode);
    }
    const obs::MetricsSnapshot delta =
        obs::metrics().snapshot().delta(before);
    const PoolAttribution attribution = poolAttribution(delta);

    const double speedup =
        modes[1].best_seconds > 0.0
            ? modes[0].best_seconds / modes[1].best_seconds
            : 0.0;

    Table table;
    table.header({"mode", "threads", "get seconds", "speedup", "ok"});
    for (const ModeResult &mode : modes)
        table.row({mode.mode, std::to_string(mode.threads),
                   Table::fmt(mode.best_seconds, 3),
                   mode.mode == "serial" ? "1.00" : Table::fmt(speedup, 2),
                   mode.ok ? "yes" : "NO"});
    std::cout << table.text() << "\n";

    if (!json_path.empty()) {
        if (obs::writeTextFile(
                json_path,
                benchJson(modes, object_bytes, put.shards, speedup, delta,
                          attribution)))
            std::cout << "wrote " << json_path << "\n";
        else
            std::cerr << "could not write " << json_path << "\n";
    }

    std::filesystem::remove_all(dir);
    // The speedup bar only makes sense when the hardware can express
    // it: a single-core box runs both modes on one CPU.
    const std::size_t cores = std::thread::hardware_concurrency();
    if (cores >= 2 && put.shards >= 4 && threads >= 4 &&
        speedup <= 1.5) {
        std::cerr << "FAIL: expected >1.5x speedup with " << threads
                  << " threads over " << put.shards << " shards on "
                  << cores << " cores, got " << speedup << "x\n"
                  << "attribution: workers busy "
                  << Table::fmt(100.0 * attribution.busy_fraction, 1)
                  << "% of pool time, queue-wait p99 <= "
                  << attribution.queue_wait_p99_seconds << "s over "
                  << attribution.tasks << " tasks\n";
        return 1;
    }
    if (cores < 2)
        std::cout << "(single-core host: speedup bar not enforced)\n";
    std::cout << "threaded get is " << Table::fmt(speedup, 2)
              << "x serial\n";
    return 0;
}
