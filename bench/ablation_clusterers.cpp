/**
 * @file
 * Ablation: the iterative Rashtchian merge clusterer vs the single-pass
 * greedy online clusterer (Clover-style design point, paper Section X).
 * The merge clusterer revisits reads over many rounds and wins on
 * accuracy; the online clusterer touches each read once and keeps only
 * per-cluster state, trading accuracy for throughput and memory.
 *
 * Usage:
 *   ablation_clusterers [--strands=N] [--coverage=N]
 */

#include <iostream>

#include "clustering/accuracy.hh"
#include "clustering/clusterer.hh"
#include "clustering/greedy_clusterer.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t num_strands =
        static_cast<std::size_t>(args.getInt("strands", 1500));
    const double coverage = args.getDouble("coverage", 10.0);

    std::cout << "=== Ablation: merge clustering vs single-pass online "
                 "clustering ===\n"
              << num_strands << " strands, coverage " << coverage
              << "\n\n";

    Table table;
    table.header({"error rate", "algorithm", "accuracy(0.9)", "clusters",
                  "seconds", "reads/s"});

    for (const double error_rate : {0.03, 0.06, 0.09, 0.12}) {
        Rng rng(static_cast<std::uint64_t>(error_rate * 10000));
        std::vector<Strand> strands;
        for (std::size_t s = 0; s < num_strands; ++s)
            strands.push_back(strand::random(rng, 132));
        IidChannel channel(
            IidChannelConfig::fromTotalErrorRate(error_rate));
        CoverageModel cov(coverage, CoverageDistribution::Poisson);
        const auto run = simulateSequencing(strands, channel, cov, rng);

        {
            RashtchianClusterer clusterer(
                RashtchianClustererConfig::forErrorRate(error_rate, 132));
            WallTimer timer;
            const auto clustering = clusterer.cluster(run.reads);
            const double seconds = timer.seconds();
            table.row({Table::fmt(error_rate, 2), "rashtchian-merge",
                       Table::fmt(clusteringAccuracy(clustering,
                                                     run.origin, 0.9),
                                  4),
                       Table::fmt(clustering.numClusters()),
                       Table::fmt(seconds, 2),
                       Table::fmt(static_cast<double>(run.reads.size()) /
                                      seconds,
                                  0)});
        }
        {
            GreedyClustererConfig cfg;
            cfg.edit_threshold =
                RashtchianClustererConfig::forErrorRate(error_rate, 132)
                    .edit_threshold;
            GreedyOnlineClusterer clusterer(cfg);
            WallTimer timer;
            const auto clustering = clusterer.cluster(run.reads);
            const double seconds = timer.seconds();
            table.row({Table::fmt(error_rate, 2), "greedy-online",
                       Table::fmt(clusteringAccuracy(clustering,
                                                     run.origin, 0.9),
                                  4),
                       Table::fmt(clustering.numClusters()),
                       Table::fmt(seconds, 2),
                       Table::fmt(static_cast<double>(run.reads.size()) /
                                      seconds,
                                  0)});
        }
        std::cout << "finished error rate " << error_rate << "\n";
    }

    std::cout << "\n" << table.text()
              << "\nExpected shape: the merge clusterer is more accurate "
                 "(especially as error\nrates rise); the online clusterer "
                 "processes each read once and sustains a\nhigher "
                 "read rate at low error.\n";
    return 0;
}
