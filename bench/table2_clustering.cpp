/**
 * @file
 * Reproduces paper Table II: q-gram vs w-gram clustering across error
 * rates at coverage 10 — accuracy, clustering time, signature
 * calculation time and overall time, averaged over several runs.
 *
 * Expected shape (paper Section VI-C):
 *  - w-gram accuracy >= q-gram accuracy, with the gap growing as the
 *    error rate rises;
 *  - w-gram signature calculation is slower (it stores positions, not
 *    bits) and its clustering time is slightly higher;
 *  - both runtimes grow steeply with the error rate.
 *
 * Usage:
 *   table2_clustering [--strands=N] [--runs=N] [--coverage=N]
 *       [--strand-len=L] [--csv=path]
 */

#include <iostream>
#include <string>
#include <vector>

#include "clustering/accuracy.hh"
#include "clustering/clusterer.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "util/args.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t num_strands =
        static_cast<std::size_t>(args.getInt("strands", 1500));
    const std::size_t runs =
        static_cast<std::size_t>(args.getInt("runs", 3));
    const double coverage = args.getDouble("coverage", 10.0);
    const std::size_t strand_len =
        static_cast<std::size_t>(args.getInt("strand-len", 132));
    const std::string csv_path = args.get("csv", "");

    std::cout << "=== Table II: q-gram vs w-gram clustering ===\n"
              << num_strands << " strands, coverage " << coverage
              << ", strand length " << strand_len << ", avg over " << runs
              << " runs\n\n";

    Table table;
    table.header({"error rate", "acc q-gram", "acc w-gram",
                  "cluster s q", "cluster s w", "sig s q", "sig s w",
                  "total s q", "total s w", "edit calls q",
                  "edit calls w"});

    for (const double error_rate : {0.03, 0.06, 0.09, 0.12, 0.15}) {
        RunningStats acc[2], cluster_s[2], sig_s[2], total_s[2],
            edit_calls[2];
        for (std::size_t run = 0; run < runs; ++run) {
            Rng rng(1000 * run + static_cast<std::uint64_t>(
                                     error_rate * 1000));
            std::vector<Strand> strands;
            for (std::size_t s = 0; s < num_strands; ++s)
                strands.push_back(strand::random(rng, strand_len));
            IidChannel channel(
                IidChannelConfig::fromTotalErrorRate(error_rate));
            CoverageModel cov(coverage, CoverageDistribution::Poisson);
            const auto reads =
                simulateSequencing(strands, channel, cov, rng);

            for (int variant = 0; variant < 2; ++variant) {
                auto cfg = RashtchianClustererConfig::forErrorRate(
                    error_rate, strand_len);
                cfg.signature = variant == 0 ? SignatureKind::QGram
                                             : SignatureKind::WGram;
                cfg.seed = rng.next();
                RashtchianClusterer clusterer(cfg);
                const auto clustering = clusterer.cluster(reads.reads);
                const auto &stats = clusterer.stats();
                acc[variant].add(
                    clusteringAccuracy(clustering, reads.origin, 0.9));
                cluster_s[variant].add(stats.clustering_seconds);
                sig_s[variant].add(stats.signature_seconds);
                total_s[variant].add(stats.clustering_seconds +
                                     stats.signature_seconds);
                edit_calls[variant].add(
                    static_cast<double>(stats.edit_distance_calls));
            }
        }
        table.row({Table::fmt(error_rate, 2),
                   Table::fmt(acc[0].mean(), 4),
                   Table::fmt(acc[1].mean(), 4),
                   Table::fmt(cluster_s[0].mean(), 2),
                   Table::fmt(cluster_s[1].mean(), 2),
                   Table::fmt(sig_s[0].mean(), 2),
                   Table::fmt(sig_s[1].mean(), 2),
                   Table::fmt(total_s[0].mean(), 2),
                   Table::fmt(total_s[1].mean(), 2),
                   Table::fmt(edit_calls[0].mean(), 0),
                   Table::fmt(edit_calls[1].mean(), 0)});
        std::cout << "finished error rate " << error_rate << "\n";
    }

    std::cout << "\n" << table.text();
    if (!csv_path.empty() && table.writeCsv(csv_path))
        std::cout << "wrote " << csv_path << "\n";
    std::cout << "\nShape notes (vs paper Table II): w-gram accuracy "
                 "tracks or beats q-gram;\nw-gram signatures cost more "
                 "to compute; both runtimes climb with error rate.\n";
    return 0;
}
