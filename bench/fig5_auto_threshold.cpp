/**
 * @file
 * Reproduces paper Figure 5: the signature-distance histogram used to
 * auto-configure the clustering thresholds.  A small sample of reads is
 * compared against a larger sample; the distance distribution is
 * bimodal (same-cluster pairs near zero, unrelated pairs in a large
 * mode), and theta_low / theta_high are picked around the gap.
 *
 * Usage:
 *   fig5_auto_threshold [--strands=N] [--coverage=N] [--error-rate=P]
 */

#include <iostream>

#include "clustering/auto_threshold.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t num_strands =
        static_cast<std::size_t>(args.getInt("strands", 800));
    const double coverage = args.getDouble("coverage", 10.0);
    const double error_rate = args.getDouble("error-rate", 0.06);

    std::cout << "=== Fig. 5: automatic threshold configuration ===\n"
              << num_strands << " strands, coverage " << coverage
              << ", error rate " << error_rate << "\n\n";

    Rng rng(55);
    std::vector<Strand> strands;
    for (std::size_t s = 0; s < num_strands; ++s)
        strands.push_back(strand::random(rng, 132));
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));
    CoverageModel cov(coverage, CoverageDistribution::Poisson);
    const auto run = simulateSequencing(strands, channel, cov, rng);

    for (const SignatureKind kind :
         {SignatureKind::QGram, SignatureKind::WGram}) {
        SignatureScheme scheme(kind, rng, 4, 60);
        AutoThresholdConfig cfg;
        // A bigger sample makes the low mode visible in the plot, as in
        // the paper's figure.
        cfg.small_sample = 80;
        cfg.large_sample = 600;
        const auto thresholds =
            autoConfigureThresholds(run.reads, scheme, rng, cfg);

        std::cout << "--- " << signatureKindName(kind)
                  << " signatures ---\n"
                  << "theta_low = " << thresholds.low
                  << ", theta_high = " << thresholds.high
                  << " (main mode at " << thresholds.main_peak
                  << ", left edge at " << thresholds.valley << ")\n";

        if (kind == SignatureKind::QGram) {
            std::cout << "distance histogram (distance | count):\n"
                      << thresholds.histogram.render(60) << "\n";
        } else {
            // The w-gram histogram spans thousands of distance values;
            // print a coarse 40-bucket view instead.
            const auto &h = thresholds.histogram;
            const std::size_t bucket =
                (h.numBins() + 39) / 40;
            std::cout << "coarse distance histogram (bucket of " << bucket
                      << " | count):\n";
            Histogram coarse(40);
            for (std::size_t b = 0; b < h.numBins(); ++b)
                for (std::uint64_t c = 0; c < h.bin(b); ++c)
                    coarse.add(static_cast<std::int64_t>(b / bucket));
            std::cout << coarse.render(60) << "\n";
        }

        // Quality of the chosen thresholds on labelled pairs.
        std::size_t intra_below_high = 0, intra_low = 0, intra_total = 0;
        std::size_t inter_above_low = 0, inter_total = 0;
        for (int t = 0; t < 4000; ++t) {
            const std::size_t i = rng.below(run.reads.size());
            const std::size_t j = rng.below(run.reads.size());
            if (i == j)
                continue;
            const auto d = scheme.distance(scheme.compute(run.reads[i]),
                                           scheme.compute(run.reads[j]));
            if (run.origin[i] == run.origin[j]) {
                ++intra_total;
                intra_below_high += d < thresholds.high;
                intra_low += d <= thresholds.low;
            } else {
                ++inter_total;
                inter_above_low += d > thresholds.low;
            }
        }
        if (intra_total > 0) {
            std::cout << "same-cluster pairs below theta_high: "
                      << intra_below_high << "/" << intra_total
                      << " (merge-eligible), of which " << intra_low
                      << " below theta_low (no edit check needed)\n";
        }
        std::cout << "unrelated pairs above theta_low: " << inter_above_low
                  << "/" << inter_total << " (no blind merges)\n\n";
    }
    return 0;
}
