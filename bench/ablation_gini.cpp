/**
 * @file
 * Ablation: Baseline vs Gini vs DNAMapper layouts under the reliability
 * skew of double-sided BMA (paper Sections IV-B/C).
 *
 * DBMA concentrates reconstruction errors in the middle strand indexes,
 * i.e. the middle matrix rows.  With the Baseline layout those rows are
 * whole RS codewords and fail first; Gini spreads every codeword across
 * all strand positions, equalising reliability.  The experiment sweeps
 * coverage and reports failed RS rows and decode success for each
 * layout — Gini should reach reliable decoding at lower coverage.
 *
 * Usage:
 *   ablation_gini [--file-bytes=N] [--error-rate=P] [--csv=path]
 */

#include <iostream>
#include <vector>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "reconstruction/bma.hh"
#include "simulator/iid_channel.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t file_bytes =
        static_cast<std::size_t>(args.getInt("file-bytes", 20000));
    const double error_rate = args.getDouble("error-rate", 0.06);
    const std::string csv_path = args.get("csv", "");

    std::cout << "=== Ablation: layout scheme vs DBMA reliability skew ==="
              << "\nfile " << file_bytes << " bytes, error rate "
              << error_rate << ", thin parity RS(60, 48)\n\n";

    Rng rng(99);
    std::vector<std::uint8_t> data(file_bytes);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    Table table;
    table.header({"coverage", "baseline failed", "gini failed",
                  "dnamapper failed", "baseline ok", "gini ok",
                  "dnamapper ok", "dropped b/g/d"});

    for (const double coverage : {8.0, 9.0, 10.0, 11.0, 12.0}) {
        std::vector<std::string> row = {Table::fmt(coverage, 0)};
        std::vector<std::string> oks;
        std::vector<std::string> drops;
        for (const LayoutScheme scheme :
             {LayoutScheme::Baseline, LayoutScheme::Gini,
              LayoutScheme::DNAMapper}) {
            MatrixCodecConfig codec_cfg;
            codec_cfg.payload_nt = 120;
            codec_cfg.index_nt = 12;
            codec_cfg.rs_n = 60;
            codec_cfg.rs_k = 48; // thin parity exposes the skew
            codec_cfg.scheme = scheme;
            if (scheme == LayoutScheme::DNAMapper)
                codec_cfg.priorities.assign(data.size(), 0);
            MatrixEncoder encoder(codec_cfg);
            MatrixDecoder decoder(codec_cfg);
            IidChannel channel(
                IidChannelConfig::fromTotalErrorRate(error_rate));
            DoubleSidedBmaReconstructor recon;

            const std::size_t seeds =
                static_cast<std::size_t>(args.getInt("seeds", 3));
            double failed = 0;
            std::size_t total_rows = 0, ok_count = 0, dropped = 0;
            for (std::size_t seed = 0; seed < seeds; ++seed) {
                RashtchianClusterer clusterer(
                    RashtchianClustererConfig::forErrorRate(
                        error_rate, codec_cfg.strandLength()));
                PipelineConfig pipe_cfg;
                pipe_cfg.coverage = CoverageModel(
                    coverage, CoverageDistribution::Poisson);
                pipe_cfg.seed = 31337 + seed;
                pipe_cfg.min_cluster_size = 2;
                Pipeline pipeline(
                    {&encoder, &decoder, &channel, &clusterer, &recon},
                    pipe_cfg);
                const auto result = pipeline.run(data);
                failed += static_cast<double>(result.report.failed_rows);
                total_rows = result.report.total_rows;
                ok_count +=
                    result.report.ok && result.report.data == data;
                dropped += result.dropped_clusters;
            }
            row.push_back(
                Table::fmt(failed / static_cast<double>(seeds), 1) + "/" +
                Table::fmt(total_rows));
            oks.push_back(Table::fmt(ok_count) + "/" + Table::fmt(seeds));
            drops.push_back(Table::fmt(dropped));
            // At one moderate coverage, record where the failures sit:
            // the positional story behind Gini (Fig. 2b).
            if (coverage == 9.0 && scheme != LayoutScheme::DNAMapper) {
                RashtchianClusterer clusterer(
                    RashtchianClustererConfig::forErrorRate(
                        error_rate, codec_cfg.strandLength()));
                PipelineConfig pipe_cfg;
                pipe_cfg.coverage = CoverageModel(
                    coverage, CoverageDistribution::Poisson);
                pipe_cfg.seed = 777;
                pipe_cfg.min_cluster_size = 2;
                Pipeline pipeline(
                    {&encoder, &decoder, &channel, &clusterer, &recon},
                    pipe_cfg);
                const auto result = pipeline.run(data);
                const std::size_t rows = codec_cfg.bytesPerMolecule();
                std::vector<std::size_t> by_third(3, 0);
                for (const auto &[unit, r] : result.report.failed_row_ids)
                    ++by_third[std::min<std::size_t>(2, r * 3 / rows)];
                std::cout << layoutSchemeName(scheme)
                          << " failed rows by strand third "
                          << "(top/middle/bottom): " << by_third[0] << "/"
                          << by_third[1] << "/" << by_third[2] << "\n";
            }
        }
        row.insert(row.end(), oks.begin(), oks.end());
        row.push_back(drops[0] + "/" + drops[1] + "/" + drops[2]);
        table.row(row);
        std::cout << "finished coverage " << coverage << "\n";
    }

    std::cout << "\n" << table.text();
    if (!csv_path.empty() && table.writeCsv(csv_path))
        std::cout << "wrote " << csv_path << "\n";
    std::cout << "\nExpected shape: under DBMA's mid-strand skew, Gini "
                 "fails fewer rows than\nBaseline at the same coverage "
                 "and decodes successfully at lower coverage.\n";
    return 0;
}
