/**
 * @file
 * dnastored load generator: N concurrent clients hammer an in-process
 * server with a seeded Zipfian get workload over a small multi-object
 * archive (docs/SERVER.md).
 *
 * The Zipf skew concentrates traffic on a few hot objects — the shape
 * that makes the scheduler's get-coalescing and pool-batching earn
 * their keep: concurrent gets for the same hot object share one
 * decode, and distinct queued objects batch into one fetchMany pass.
 * The bench asserts ZERO failed requests and byte-exact payloads, then
 * reports client-observed latency quantiles (p50/p99), throughput and
 * the scheduler's coalescing/batching counters.
 *
 * Usage:
 *   server_load [--clients=N] [--requests-per-client=N] [--objects=N]
 *               [--object-bytes=N] [--zipf-skew=S] [--seed=S]
 *               [--error-rate=P] [--coverage=C] [--threads=N]
 *               [--batch-max=N] [--max-batches=N] [--json=path]
 *
 * --json writes a schema dnastore.bench_server_load document; the
 * checked-in baseline lives at bench/baselines/BENCH_server_load.json
 * and is diffed by the perf-regression CI job.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "server/archive_backend.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "util/args.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace dnastore;

namespace
{

struct ClientStats
{
    std::vector<double> latencies_seconds;
    std::uint64_t failures = 0;
    std::string first_error;
};

double
quantile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(pos);
    return sorted[std::min(idx, sorted.size() - 1)];
}

std::string
benchJson(std::size_t clients, std::size_t objects,
          std::size_t object_bytes, std::uint64_t requests,
          std::uint64_t failures, double zipf_skew, double wall_seconds,
          double mean_s, double p50_s, double p99_s, double max_s,
          const server::SchedulerCounters &sched,
          const obs::MetricsSnapshot &metrics)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.bench_server_load");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});
    json.key("clients");
    json.value(std::uint64_t{clients});
    json.key("objects");
    json.value(std::uint64_t{objects});
    json.key("object_bytes");
    json.value(std::uint64_t{object_bytes});
    json.key("requests");
    json.value(requests);
    json.key("failures");
    json.value(failures);
    json.key("zipf_skew");
    json.value(zipf_skew);
    json.key("latency");
    json.beginObject();
    json.key("mean_seconds");
    json.value(mean_s);
    json.key("p50_seconds");
    json.value(p50_s);
    json.key("p99_seconds");
    json.value(p99_s);
    json.key("max_seconds");
    json.value(max_s);
    json.endObject();
    json.key("throughput_rps");
    json.value(wall_seconds > 0.0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0.0);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.key("scheduler");
    json.beginObject();
    json.key("batched_gets");
    json.value(sched.batched_gets);
    json.key("batches");
    json.value(sched.batches);
    json.key("coalesced_gets");
    json.value(sched.coalesced_gets);
    json.key("rejected_draining");
    json.value(sched.rejected_draining);
    json.key("rejected_overload");
    json.value(sched.rejected_overload);
    json.key("rejected_quota");
    json.value(sched.rejected_quota);
    json.key("requests");
    json.value(sched.requests);
    json.endObject();
    json.key("metrics");
    obs::writeMetricsValue(json, metrics);
    json.endObject();
    return json.text();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t clients =
        static_cast<std::size_t>(args.getInt("clients", 32));
    const std::size_t per_client =
        static_cast<std::size_t>(args.getInt("requests-per-client", 6));
    const std::size_t objects =
        static_cast<std::size_t>(args.getInt("objects", 10));
    const std::size_t object_bytes =
        static_cast<std::size_t>(args.getInt("object-bytes", 192));
    const double zipf_skew = args.getDouble("zipf-skew", 1.0);
    const std::uint64_t seed = static_cast<std::uint64_t>(
        args.getInt("seed", 0x10adULL));
    const std::string json_path = args.get("json", "");

    // Small objects + gentle channel keep one fetch sub-second while
    // still exercising the full retrieval path (PCR select, simulate,
    // cluster, consensus, decode).
    archive::ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 2048;

    const std::string dir = "/tmp/dnastore_bench_server_load";
    std::filesystem::remove_all(dir);
    auto opened = archive::Archive::create(dir, params);
    if (!opened.ok()) {
        std::cerr << "cannot create archive: " << opened.error << "\n";
        return 1;
    }
    archive::Archive &tube = *opened.archive;

    std::vector<std::vector<std::uint8_t>> payloads(objects);
    std::vector<std::string> names(objects);
    for (std::size_t i = 0; i < objects; ++i) {
        Rng rng(seed ^ (0x0b1ec7ULL + i));
        payloads[i].resize(object_bytes);
        for (auto &b : payloads[i])
            b = static_cast<std::uint8_t>(rng.below(256));
        names[i] = "obj" + std::to_string(i);
        const auto put = tube.put(names[i], payloads[i], 2);
        if (!put.ok()) {
            std::cerr << "put " << names[i] << " failed: " << put.error
                      << "\n";
            return 1;
        }
    }

    archive::RetrievalConfig retrieval;
    retrieval.error_rate = args.getDouble("error-rate", 0.02);
    retrieval.coverage = args.getDouble("coverage", 10.0);
    retrieval.seed = seed ^ 0x5eedULL;
    retrieval.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 4));

    server::ServerConfig config;
    config.port = 0;
    config.scheduler.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 4));
    // Admission must clear the offered load: clients issue one request
    // at a time, so `clients` is the peak inflight.
    config.scheduler.max_inflight = clients * 2;
    config.scheduler.per_client_inflight = 4;
    config.scheduler.batch_max =
        static_cast<std::size_t>(args.getInt("batch-max", 4));
    config.scheduler.max_concurrent_batches =
        static_cast<std::size_t>(args.getInt("max-batches", 2));

    server::ArchiveBackend backend(tube, retrieval, 2);
    server::Server server(backend, config);
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    if (server.start() != server::ServerStatus::Ok) {
        std::cerr << "server start failed\n";
        return 1;
    }
    std::thread serve_thread([&server] { server.serve(); });

    std::cout << "=== dnastored load generator ===\n"
              << clients << " clients x " << per_client
              << " Zipf(s=" << zipf_skew << ") gets over " << objects
              << " objects of " << object_bytes << " bytes (port "
              << server.port() << ")\n\n";

    std::vector<ClientStats> stats(clients);
    const auto wall_start = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> workers;
        workers.reserve(clients);
        for (std::size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                ClientStats &my = stats[c];
                ZipfSampler zipf(objects, zipf_skew,
                                 seed ^ (0xc11e47ULL * (c + 1)));
                server::Client client;
                if (!client.connectTo(server.port(), 120000)) {
                    my.failures = per_client;
                    my.first_error = client.error();
                    return;
                }
                for (std::size_t r = 0; r < per_client; ++r) {
                    const std::size_t pick = zipf.next();
                    const auto start = std::chrono::steady_clock::now();
                    const server::ClientReply reply =
                        client.get(names[pick]);
                    const auto stop = std::chrono::steady_clock::now();
                    if (!reply.ok() || reply.data != payloads[pick]) {
                        ++my.failures;
                        if (my.first_error.empty())
                            my.first_error =
                                reply.error.empty()
                                    ? server::serverStatusName(
                                          reply.status)
                                    : reply.error;
                        continue;
                    }
                    my.latencies_seconds.push_back(
                        std::chrono::duration<double>(stop - start)
                            .count());
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    server.requestDrain();
    serve_thread.join();

    std::vector<double> latencies;
    std::uint64_t failures = 0;
    std::string first_error;
    for (const ClientStats &s : stats) {
        latencies.insert(latencies.end(), s.latencies_seconds.begin(),
                         s.latencies_seconds.end());
        failures += s.failures;
        if (first_error.empty())
            first_error = s.first_error;
    }
    std::sort(latencies.begin(), latencies.end());
    double mean = 0.0;
    for (const double v : latencies)
        mean += v;
    if (!latencies.empty())
        mean /= static_cast<double>(latencies.size());
    const double p50 = quantile(latencies, 0.50);
    const double p99 = quantile(latencies, 0.99);
    const double max_s =
        latencies.empty() ? 0.0 : latencies.back();
    const std::uint64_t requests =
        static_cast<std::uint64_t>(clients) * per_client;

    const server::SchedulerCounters sched = server.counters();
    const obs::MetricsSnapshot delta =
        obs::metrics().snapshot().delta(before);

    Table table;
    table.header({"metric", "value"});
    table.row({"requests", std::to_string(requests)});
    table.row({"failures", std::to_string(failures)});
    table.row({"coalesced gets", std::to_string(sched.coalesced_gets)});
    table.row({"fetch batches", std::to_string(sched.batches)});
    table.row({"latency p50 (s)", Table::fmt(p50, 3)});
    table.row({"latency p99 (s)", Table::fmt(p99, 3)});
    table.row({"throughput (req/s)",
               Table::fmt(wall_seconds > 0.0
                              ? static_cast<double>(requests) /
                                    wall_seconds
                              : 0.0,
                          2)});
    std::cout << table.text() << "\n";

    if (!json_path.empty()) {
        if (obs::writeTextFile(
                json_path,
                benchJson(clients, objects, object_bytes, requests,
                          failures, zipf_skew, wall_seconds, mean, p50,
                          p99, max_s, sched, delta)))
            std::cout << "wrote " << json_path << "\n";
        else
            std::cerr << "could not write " << json_path << "\n";
    }

    std::filesystem::remove_all(dir);
    if (failures != 0) {
        std::cerr << "FAIL: " << failures << " of " << requests
                  << " requests failed (first: " << first_error
                  << ")\n";
        return 1;
    }
    std::cout << "all " << requests << " requests succeeded byte-exact ("
              << sched.coalesced_gets << " coalesced, " << sched.batches
              << " batches)\n";
    return 0;
}
