/**
 * @file
 * Reproduces paper Table III: per-stage latency of the full pipeline
 * for every {q-gram, w-gram} x {BMA, DBMA, NWA} module combination at
 * coverage 10 and coverage 50 (payload length 120 nt, 6% error rate).
 *
 * Absolute numbers differ from the paper (their testbed is a 24-core
 * Xeon and a larger file); the *shape* must hold:
 *  - encoding cost is identical across combinations;
 *  - clustering grows with coverage and is slower for w-gram at high
 *    coverage;
 *  - DBMA reconstruction costs about twice BMA; NWA is fastest at high
 *    coverage (it caps the reads it aligns);
 *  - decoding is small and constant.
 *
 * Usage:
 *   table3_pipeline_latency [--file-bytes=N] [--csv=path] [--json=path]
 *
 * --json writes a schema-versioned machine-readable document
 * (schema dnastore.bench_table3) with one entry per module combination,
 * including the per-run metrics snapshot deltas; the checked-in
 * baseline lives at bench/baselines/BENCH_table3_pipeline_latency.json
 * (regeneration command in README.md).
 */

#include <iostream>
#include <vector>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dnastore;

namespace
{

/** Counter value from a snapshot, 0 when absent. */
std::uint64_t
counterValue(const obs::MetricsSnapshot &snapshot, const std::string &name)
{
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
}

struct ComboResult
{
    std::string name;
    double coverage = 0.0;
    PipelineResult result;
    bool round_trip_ok = false;
};

/** Machine-readable bench document (schema dnastore.bench_table3). */
std::string
benchJson(const std::vector<ComboResult> &combos, std::size_t file_bytes)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.bench_table3");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});
    json.key("file_bytes");
    json.value(std::uint64_t{file_bytes});
    json.key("combinations");
    json.beginArray();
    for (const ComboResult &combo : combos) {
        json.beginObject();
        json.key("pipeline");
        json.value(combo.name);
        json.key("coverage");
        json.value(combo.coverage);
        json.key("stages");
        json.beginObject();
        json.key("encoding_seconds");
        json.value(combo.result.latency.encoding);
        json.key("encoding_cpu_seconds");
        json.value(combo.result.cpu.encoding);
        json.key("simulation_seconds");
        json.value(combo.result.latency.simulation);
        json.key("simulation_cpu_seconds");
        json.value(combo.result.cpu.simulation);
        json.key("clustering_seconds");
        json.value(combo.result.latency.clustering);
        json.key("clustering_cpu_seconds");
        json.value(combo.result.cpu.clustering);
        json.key("reconstruction_seconds");
        json.value(combo.result.latency.reconstruction);
        json.key("reconstruction_cpu_seconds");
        json.value(combo.result.cpu.reconstruction);
        json.key("decoding_seconds");
        json.value(combo.result.latency.decoding);
        json.key("decoding_cpu_seconds");
        json.value(combo.result.cpu.decoding);
        json.key("total_seconds");
        json.value(combo.result.latency.total() -
                   combo.result.latency.simulation);
        json.key("total_cpu_seconds");
        json.value(combo.result.cpu.total() -
                   combo.result.cpu.simulation);
        json.endObject();
        // Driving-thread CPU over wall for the paper-comparable total;
        // < 1 means the run waited (I/O, scheduling, pool hand-offs).
        const double wall_total = combo.result.latency.total() -
                                  combo.result.latency.simulation;
        const double cpu_total =
            combo.result.cpu.total() - combo.result.cpu.simulation;
        json.key("utilization");
        json.value(wall_total > 0.0 ? cpu_total / wall_total : 0.0);
        json.key("dropped_clusters");
        json.value(std::uint64_t{combo.result.dropped_clusters});
        json.key("round_trip_ok");
        json.value(combo.round_trip_ok);
        json.key("metrics");
        obs::writeMetricsValue(json, combo.result.metrics);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.text();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t file_bytes =
        static_cast<std::size_t>(args.getInt("file-bytes", 50000));
    const std::string csv_path = args.get("csv", "");
    const std::string json_path = args.get("json", "");
    const double error_rate = 0.06;

    MatrixCodecConfig codec_cfg;
    codec_cfg.payload_nt = 120; // the paper's payload length
    codec_cfg.index_nt = 12;
    codec_cfg.rs_n = 60;
    codec_cfg.rs_k = 40;
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));

    std::cout << "=== Table III: pipeline latency breakdown (seconds) ==="
              << "\nfile size " << file_bytes << " bytes, payload 120 nt, "
              << "error rate 6%\n\n";

    Rng rng(3333);
    std::vector<std::uint8_t> data(file_bytes);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    NwConsensusReconstructor nwa;
    const std::vector<std::pair<std::string, const Reconstructor *>>
        recons = {{"BMA", &bma}, {"DBMA", &dbma}, {"NWA", &nwa}};

    Table table;
    table.header({"pipeline", "coverage", "encoding", "clustering",
                  "recon", "decoding", "total", "edit calls", "rs fixed",
                  "dropped", "decode ok"});

    std::vector<ComboResult> combos;
    for (const double coverage : {10.0, 50.0}) {
        for (const SignatureKind kind :
             {SignatureKind::QGram, SignatureKind::WGram}) {
            for (const auto &[recon_name, recon] : recons) {
                auto clu_cfg = RashtchianClustererConfig::forErrorRate(
                    error_rate, codec_cfg.strandLength());
                clu_cfg.signature = kind;
                RashtchianClusterer clusterer(clu_cfg);

                PipelineConfig pipe_cfg;
                pipe_cfg.coverage = CoverageModel(
                    coverage, CoverageDistribution::Poisson);
                pipe_cfg.seed = 7;
                pipe_cfg.min_cluster_size = 2;
                Pipeline pipeline({&encoder, &decoder, &channel,
                                   &clusterer, recon},
                                  pipe_cfg);
                const auto result = pipeline.run(data);

                const std::string name =
                    std::string(kind == SignatureKind::QGram ? "q-gram"
                                                             : "w-gram") +
                    " + " + recon_name;
                // Module-level columns come straight from the run's
                // metrics snapshot delta.
                const obs::MetricsSnapshot &snap = result.metrics;
                const bool ok =
                    result.report.ok && result.report.data == data;
                table.row(
                    {name, Table::fmt(coverage, 0),
                     Table::fmt(result.latency.encoding, 2),
                     Table::fmt(result.latency.clustering, 2),
                     Table::fmt(result.latency.reconstruction, 2),
                     Table::fmt(result.latency.decoding, 2),
                     Table::fmt(result.latency.total() -
                                    result.latency.simulation,
                                2),
                     std::to_string(counterValue(
                         snap, "clustering.edit_distance_calls_total")),
                     std::to_string(counterValue(
                         snap, "decoding.rs_symbols_corrected_total")),
                     std::to_string(result.dropped_clusters),
                     ok ? "yes" : "NO"});
                combos.push_back({name, coverage, result, ok});
                std::cout << "finished " << name << " @ coverage "
                          << coverage << "\n";
            }
        }
    }

    std::cout << "\n" << table.text();
    if (!csv_path.empty() && table.writeCsv(csv_path))
        std::cout << "wrote " << csv_path << "\n";
    if (!json_path.empty()) {
        if (obs::writeTextFile(json_path, benchJson(combos, file_bytes)))
            std::cout << "wrote " << json_path << "\n";
        else
            std::cerr << "could not write " << json_path << "\n";
    }
    std::cout << "\n(Totals exclude the simulation stage, which has no "
                 "wetlab counterpart in the paper's table.)\n";
    return 0;
}
